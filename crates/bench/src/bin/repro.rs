//! `repro` — regenerate every table and figure of the paper, run
//! design-space sweeps (single-process or sharded across worker processes),
//! record/replay portable traces, and serve simulations over HTTP.
//!
//! ```text
//! repro [--size tiny|default|large] [table1|table2|table3|table4|table5|table6|
//!        fig4|fig6|fig8|fig10|bottleneck|sweep|energy|serve|bench|all]
//! repro trace record|replay|stat|golden …
//! repro worker --shard I/N --cache DIR [--workers N] [--traces a,b]
//!              [--obs-log FILE]
//! repro fleet serve|sweep|status …
//!
//! sweep options:
//!   --workers N          worker threads (default: available parallelism;
//!                        with --shards, threads per shard process)
//!   --shards N           fan the sweep out across N `repro worker` child
//!                        processes sharing the result cache; merged output
//!                        is byte-identical to the single-process run
//!                        (requires the cache: incompatible with --no-cache;
//!                        set REPRO_WORKER to interpose a worker launcher)
//!   --schemes a,b        extension schemes: 2bit,3bit,halfword (default: all)
//!   --orgs a,b           organizations by id, or "all" (default: all)
//!   --mems a,b           memory profiles: paper,small-l1,wide-l2,slow-memory
//!                        (default: paper)
//!   --traces a,b         recorded .sctrace files to sweep alongside kernels
//!   --energy-model a,b   process-node energy models the reports are
//!                        evaluated under: paper-180nm,generic-45nm,modern-7nm
//!                        (default: paper-180nm; post-processing only — the
//!                        exports use the first, the frontier is printed per
//!                        model)
//!   --cache DIR          result-cache directory (default: target/sweep-cache)
//!   --no-cache           disable the result cache
//!   --csv PATH           write per-job results as CSV
//!   --json PATH          write per-job results as JSON
//!   --obs-log FILE       stream observability span events as JSONL (sweep,
//!                        serve and bench; workers append to FILE.shard-<i>)
//!
//! energy (a per-preset comparison of the same sweep; accepts
//! --schemes/--orgs/--mems and the --workers/--cache options):
//!   repro [--size S] energy
//!
//! serve options (plus --workers/--cache/--no-cache as above):
//!   --addr HOST:PORT     listen address (default: 127.0.0.1:7878)
//!   --max-batch N        jobs coalesced per executor batch (default: 64)
//!   --backend B          where batches execute: local (default) or
//!                        subprocess[:SHARDS] — sharded `repro worker`
//!                        children merging through the shared cache
//!                        (requires --cache)
//!   --memo-cap N         in-memory result-memo entries retained (default
//!                        4096, oldest evicted first)
//!   --ticket-cap N       finished /sweep tickets retained for polling
//!                        (default 64, oldest evicted first)
//!   --max-conns N        reactor connection cap; above it new connections
//!                        are shed with a fast 503 + Retry-After
//!                        (default 1024)
//!   --read-deadline-ms N per-connection read deadline: a partial request
//!                        older than this is answered 408 and closed
//!                        (default 10000)
//!   --keep-alive on|off  honor client Connection: keep-alive (default on)
//!   --frontier HOST:PORT register with (and heartbeat to) this frontier so
//!                        it dispatches fleet shards here
//!   --self-addr H:P      the address advertised to the frontier (default:
//!                        the bound listen address)
//!   --heartbeat-ms N     heartbeat interval (default 2000)
//!
//! fleet (the frontier/worker topology over HTTP; see `sigcomp_fabric`):
//!   fleet serve …        a worker: `serve` plus registration — same options,
//!                        --frontier names the frontier to announce to
//!   fleet sweep …        run a sweep as the frontier of a worker fleet:
//!                        the sweep options above (cache required) plus
//!                          --fleet a:p,b:p   worker addresses to dispatch to
//!                                            (default: none — degrades to a
//!                                            local run over the same cache)
//!                          --timeout-ms N    per-dispatch timeout (60000)
//!                          --attempts N      dispatch attempts per worker
//!                                            before re-sharding its jobs (3)
//!   fleet status --frontier H:P   print a frontier's /fleet document
//!                        (workers, liveness, merged worker obs)
//!
//! bench (the self-timed perf harness; see `sigcomp_bench::perf`): replays
//! the golden corpus, runs the standard tiny sweep cache-cold and
//! cache-warm against a throwaway cache, and times repeated Pareto-frontier
//! extraction, writing a schema-checked `BENCH_<label>.json`:
//!   --quick              shrunk phases for CI smoke runs
//!   --label NAME         report label (default: local)
//!   --out PATH           report path (default: BENCH_<label>.json)
//!   --corpus DIR         replay a pre-recorded golden corpus directory
//!   --check FILE         only validate FILE against the report schema
//!   --compare FILE       diff the fresh report against baseline FILE:
//!                        shape metrics must match, throughput metrics may
//!                        regress at most 2x; each violation is named and
//!                        the exit code fails
//!   --trajectory PATH    rolling history document each measuring run
//!                        appends a compact row to
//!                        (default: BENCH_trajectory.json)
//!
//! worker (the subprocess-backend shard protocol; normally spawned by
//! `repro sweep --shards` or `repro serve --backend subprocess`, not by
//! hand): reads the deduped job list on stdin — one line per job, sorted by
//! job id — executes the lines with index % N == I against the shared
//! cache, and reports per-job provenance on stdout.
//!
//! trace subcommands:
//!   trace record WORKLOAD|--all --out PATH [--size S]
//!                        run kernels live and write .sctrace files
//!                        (--all writes <PATH>/<workload>.sctrace)
//!   trace replay FILE [--schemes a,b] [--orgs all|a,b] [--mems a,b]
//!                        replay a recorded trace through the models
//!   trace stat FILE      header, digest and instruction-mix summary
//!   trace golden DIR     regenerate the golden conformance corpus
//! ```
//!
//! With no subcommand (or `all`) every paper artefact is printed in paper
//! order (`all` does not include `sweep`, `serve`, `bench` or `trace`).

use sigcomp::analyzer::AnalyzerConfig;
use sigcomp::{EnergyModel, ExtScheme, ProcessNode, SigStats};
use sigcomp_bench::{
    activity_study, activity_table, bottleneck, cpi_study, figure, figure_orgs, golden, histogram,
    merged_stats, pattern_histogram_rows, perf, table1, table2, table3, table4,
};
use sigcomp_explore::{
    config_points, frontier_table, parse_shard, run_sweep, static_prune, to_csv, to_json,
    try_run_jobs_traced, try_run_sweep, ExecBackend, FleetConfig, JobSpec, MemProfile, PruneReason,
    ResultCache, SubprocessConfig, SweepOptions, SweepSpec, TraceInput, TraceSource, WORKER_HEADER,
};
use sigcomp_fabric::client::HttpClient;
use sigcomp_fabric::worker::Heartbeater;
use sigcomp_isa::TraceReader;
use sigcomp_pipeline::OrgKind;
use sigcomp_serve::{BatchConfig, ServeConfig, Server};
use sigcomp_static::{
    analyze_program, program_from_records, verify_trace_against_bounds, EntryState, Width,
    WidthReport,
};
use sigcomp_workloads::{find, suite_names, WorkloadSize};
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "\
usage: repro [--size tiny|default|large] \
[table1|table2|table3|table4|table5|table6|fig4|fig6|fig8|fig10|bottleneck|sweep|energy|serve|bench|all]
       repro trace record WORKLOAD|--all --out PATH [--size tiny|default|large]
       repro trace replay FILE [--schemes a,b] [--orgs all|a,b] [--mems a,b]
                   [--energy-model paper-180nm|generic-45nm|modern-7nm]
       repro trace stat FILE
       repro trace golden DIR
       repro analyze WORKLOAD|FILE.sctrace [--size tiny|default|large]
                   [--csv PATH] [--json PATH]
       repro worker --shard I/N --cache DIR [--workers N] [--traces a,b]
                    [--obs-log FILE]
       repro fleet serve [serve options] [--frontier HOST:PORT]
       repro fleet sweep [sweep options] [--fleet a:p,b:p] [--timeout-ms N]
                   [--attempts N]
       repro fleet status --frontier HOST:PORT
sweep options: [--workers N] [--shards N] [--schemes 2bit,3bit,halfword]
[--orgs all|id,id,...] [--mems paper,small-l1,wide-l2,slow-memory]
[--traces f1.sctrace,f2.sctrace]
[--energy-model paper-180nm,generic-45nm,modern-7nm]
[--cache DIR] [--no-cache] [--csv PATH] [--json PATH] [--obs-log FILE]
[--static-prune PCT]
(--shards requires the cache: worker processes merge through it; set
REPRO_WORKER to interpose a worker launcher)
energy options: [--workers N] [--schemes a,b] [--orgs all|a,b] [--mems a,b]
[--cache DIR] [--no-cache]
serve options: [--addr HOST:PORT] [--max-batch N] [--backend local|subprocess[:N]]
[--memo-cap N] [--ticket-cap N] [--max-conns N] [--read-deadline-ms N]
[--keep-alive on|off] [--workers N] [--cache DIR] [--no-cache]
[--obs-log FILE] [--frontier HOST:PORT] [--self-addr HOST:PORT]
[--heartbeat-ms N]
bench options: [--quick] [--label NAME] [--out PATH] [--corpus DIR]
[--compare BASELINE.json] [--trajectory PATH] [--obs-log FILE], or
`repro bench --check FILE` to schema-validate a report";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

/// Reports a malformed invocation: the specific problem first, the usage
/// text after, and a failing exit code back to the shell.
fn fail(message: &str) -> ExitCode {
    eprintln!("repro: {message}");
    usage()
}

/// Options that only affect the `sweep` and `serve` subcommands.
#[derive(Default)]
struct SweepArgs {
    workers: Option<usize>,
    shards: Option<usize>,
    schemes: Option<Vec<ExtScheme>>,
    orgs: Option<Vec<OrgKind>>,
    mems: Option<Vec<MemProfile>>,
    traces: Option<Vec<String>>,
    energy_models: Option<Vec<ProcessNode>>,
    cache_dir: Option<String>,
    no_cache: bool,
    csv: Option<String>,
    json: Option<String>,
    addr: Option<String>,
    max_batch: Option<usize>,
    backend: Option<BackendChoice>,
    memo_cap: Option<usize>,
    ticket_cap: Option<usize>,
    max_conns: Option<usize>,
    read_deadline_ms: Option<u64>,
    keep_alive: Option<bool>,
    obs_log: Option<String>,
    bench_quick: bool,
    bench_label: Option<String>,
    bench_out: Option<String>,
    bench_corpus: Option<String>,
    bench_check: Option<String>,
    bench_compare: Option<String>,
    bench_trajectory: Option<String>,
    fleet_workers: Option<Vec<String>>,
    frontier: Option<String>,
    self_addr: Option<String>,
    heartbeat_ms: Option<u64>,
    timeout_ms: Option<u64>,
    attempts: Option<u32>,
    static_prune: Option<f64>,
}

/// The `--backend` value of `repro serve`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BackendChoice {
    /// In-process threads (the default).
    Local,
    /// Sharded `repro worker` subprocesses.
    Subprocess(usize),
}

/// Parses a `--backend` value: `local`, `subprocess`, or `subprocess:N`.
fn parse_backend(raw: &str) -> Result<BackendChoice, String> {
    if raw == "local" {
        return Ok(BackendChoice::Local);
    }
    let shards = match raw.split_once(':') {
        None if raw == "subprocess" => {
            std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get)
        }
        Some(("subprocess", n)) => n.parse().ok().filter(|&n: &usize| n > 0).ok_or_else(|| {
            format!(
                "invalid value '{raw}' for --backend \
                     (the shard count must be a positive integer)"
            )
        })?,
        _ => {
            return Err(format!(
                "invalid value '{raw}' for --backend (expected local or subprocess[:SHARDS])"
            ))
        }
    };
    Ok(BackendChoice::Subprocess(shards))
}

/// The worker executable the subprocess backend spawns: `REPRO_WORKER` when
/// set (to interpose a launcher — a container or ssh wrapper, say),
/// otherwise this very binary.
fn worker_program() -> Result<std::path::PathBuf, String> {
    if let Some(program) = std::env::var_os("REPRO_WORKER") {
        return Ok(std::path::PathBuf::from(program));
    }
    std::env::current_exe()
        .map_err(|e| format!("cannot locate the repro binary to spawn workers: {e}"))
}

/// Builds the subprocess backend config shared by `sweep --shards` and
/// `serve --backend subprocess`. When `obs_log` is set each worker also
/// streams its span events to `<obs_log>.shard-<i>`.
fn subprocess_backend(
    shards: usize,
    trace_paths: &[String],
    obs_log: Option<&str>,
) -> Result<ExecBackend, String> {
    let mut config = SubprocessConfig::new(shards, worker_program()?);
    config.trace_paths = trace_paths.to_vec();
    config.obs_log = obs_log.map(std::path::PathBuf::from);
    Ok(ExecBackend::Subprocess(config))
}

fn parse_list<T>(value: &str, parse: impl Fn(&str) -> Option<T>) -> Option<Vec<T>> {
    value.split(',').map(|part| parse(part.trim())).collect()
}

/// Opens the result cache named by `--cache`/`--no-cache` (shared, via the
/// same default directory, by CLI sweeps and a running server).
fn open_cache(args: &SweepArgs, what: &str) -> Option<ResultCache> {
    if args.no_cache {
        return None;
    }
    let dir = args.cache_dir.as_deref().unwrap_or("target/sweep-cache");
    match ResultCache::open(dir) {
        Ok(cache) => Some(cache),
        Err(e) => {
            eprintln!("{what}: cannot open result cache at {dir}: {e}; caching disabled");
            None
        }
    }
}

/// Runs `repro sweep` (`fleet = false`) or `repro fleet sweep` (`fleet =
/// true` — this process is the frontier and the configured backend is the
/// worker fleet).
fn run_sweep_command(size: WorkloadSize, args: &SweepArgs, fleet: bool) -> ExitCode {
    let mut spec = SweepSpec::full(size).mems(&[MemProfile::Paper]);
    if let Some(schemes) = &args.schemes {
        spec = spec.schemes(schemes);
    }
    if let Some(orgs) = &args.orgs {
        spec = spec.orgs(orgs);
    }
    if let Some(mems) = &args.mems {
        spec = spec.mems(mems);
    }
    if let Some(models) = &args.energy_models {
        spec = spec.energy_models(models);
    }
    if let Some(paths) = &args.traces {
        let mut inputs = Vec::with_capacity(paths.len());
        for path in paths {
            match TraceInput::load(path) {
                Ok(input) => inputs.push(input),
                Err(e) => {
                    eprintln!("sweep: cannot read trace {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        spec = spec.trace_files(&inputs);
    }
    if spec.is_empty() {
        eprintln!("sweep: the requested design space is empty");
        return ExitCode::FAILURE;
    }

    let cache = open_cache(args, "sweep");
    let backend = if fleet {
        // The frontier replicates every worker's cache entries into this
        // cache and merges the sweep from it — exactly the subprocess
        // backend's merge discipline, so the output stays byte-identical.
        if args.no_cache {
            return fail("fleet sweep requires the result cache (drop --no-cache)");
        }
        if cache.is_none() {
            eprintln!("sweep: fleet sweep requires the result cache, which could not be opened");
            return ExitCode::FAILURE;
        }
        sigcomp_fabric::install();
        let defaults = FleetConfig::default();
        ExecBackend::Fleet(FleetConfig {
            workers: args.fleet_workers.clone().unwrap_or_default(),
            timeout_ms: args.timeout_ms.unwrap_or(defaults.timeout_ms),
            attempts: args.attempts.unwrap_or(defaults.attempts),
        })
    } else {
        match args.shards {
            None => ExecBackend::LocalThreads,
            Some(shards) => {
                // The shared cache directory is how worker processes publish
                // their results back; without it there is nothing to merge.
                if args.no_cache {
                    return fail("--shards requires the result cache (drop --no-cache)");
                }
                if cache.is_none() {
                    eprintln!(
                        "sweep: --shards requires the result cache, which could not be opened"
                    );
                    return ExitCode::FAILURE;
                }
                let trace_paths = args.traces.clone().unwrap_or_default();
                match subprocess_backend(shards, &trace_paths, args.obs_log.as_deref()) {
                    Ok(backend) => backend,
                    Err(e) => {
                        eprintln!("sweep: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
    };
    let options = SweepOptions {
        workers: args.workers,
        cache,
        backend,
    };

    println!(
        "sweep: {} configurations at size {}",
        spec.len(),
        size.name()
    );
    let run = if let Some(threshold) = args.static_prune {
        // The static pre-screen. Kept jobs stay in enumeration order, so
        // their outcomes (and export rows) are byte-identical to the
        // corresponding rows of an unpruned run; pruned configurations are
        // reported here, never silently dropped.
        let jobs = spec.enumerate();
        let outcome = static_prune(&jobs, threshold);
        println!(
            "static prune (< {threshold} % predicted saving): kept {} of {} configurations",
            outcome.kept.len(),
            jobs.len()
        );
        for pruned in &outcome.pruned {
            let PruneReason::BelowThreshold { predicted_pct } = pruned.reason;
            println!(
                "  pruned {} (predicted saving {predicted_pct:.1} %)",
                pruned.spec.label()
            );
        }
        if outcome.kept.is_empty() {
            eprintln!("sweep: --static-prune removed every configuration");
            return ExitCode::FAILURE;
        }
        try_run_jobs_traced(&outcome.kept, spec.trace_inputs(), &options)
    } else {
        try_run_sweep(&spec, &options)
    };
    let summary = match run {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("sweep: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "ran on {} {} in {:.2} s: {} simulated, {} from cache",
        summary.workers,
        if summary.backend == "subprocess" {
            "worker processes"
        } else {
            "workers"
        },
        summary.wall.as_secs_f64(),
        summary.simulated(),
        summary.cached()
    );
    let loads: Vec<String> = summary
        .worker_loads
        .iter()
        .map(|(jobs, steals)| format!("{jobs}/{steals}"))
        .collect();
    println!("worker loads (jobs/steals): {}", loads.join(" "));
    if options.cache.is_some() {
        let stats = sigcomp_explore::cache_stats();
        println!(
            "cache: {} hits, {} misses, {} retired, {} stores",
            stats.hits, stats.misses, stats.retired, stats.stores
        );
    }
    // The replay/cache counters are invariant across backends: a sharded run
    // merges its workers' registries, so this line must match the
    // single-process run byte for byte (CI pins that). Scheduling-dependent
    // counters (dedup, worker gauges) are deliberately left out.
    let totals: Vec<String> = sigcomp_obs::global()
        .snapshot()
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("replay.") || name.starts_with("explore.cache."))
        .map(|(name, value)| format!("{name}={value}"))
        .collect();
    if !totals.is_empty() {
        println!("obs totals: {}", totals.join(" "));
    }
    println!();

    // One frontier per requested energy model; the axis is post-processing,
    // so every model reads the same simulated counters.
    let nodes = spec.energy_model_axis();
    let points = config_points(&summary.outcomes);
    for (i, &node) in nodes.iter().enumerate() {
        if nodes.len() > 1 {
            if i > 0 {
                println!();
            }
            println!("energy model: {node}");
        }
        print!("{}", frontier_table(&points, &node.model()));
    }

    // Exports are evaluated under the first requested model (the only one,
    // unless --energy-model named several).
    let model = nodes[0].model();
    type Serializer = fn(&[sigcomp_explore::JobOutcome], &EnergyModel) -> String;
    for (path, serialize, what) in [
        (args.csv.as_deref(), to_csv as Serializer, "CSV"),
        (args.json.as_deref(), to_json as Serializer, "JSON"),
    ] {
        if let Some(path) = path {
            if let Err(e) = std::fs::write(path, serialize(&summary.outcomes, &model)) {
                eprintln!("sweep: cannot write {what} to {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {what} to {path}");
        }
    }
    ExitCode::SUCCESS
}

/// Runs one sweep and compares its energy/performance picture across every
/// process-node preset: the dynamic term is preset-independent (the paper's
/// number), while the leakage term rewards gated-off byte lanes more the
/// leakier the node — shifting which configurations are Pareto-optimal.
fn run_energy_command(size: WorkloadSize, args: &SweepArgs) -> ExitCode {
    let mut spec = SweepSpec::paper(size);
    if let Some(schemes) = &args.schemes {
        spec = spec.schemes(schemes);
    }
    if let Some(orgs) = &args.orgs {
        spec = spec.orgs(orgs);
    }
    if let Some(mems) = &args.mems {
        spec = spec.mems(mems);
    }
    if spec.is_empty() {
        eprintln!("energy: the requested design space is empty");
        return ExitCode::FAILURE;
    }
    let options = SweepOptions {
        workers: args.workers,
        cache: open_cache(args, "energy"),
        backend: ExecBackend::LocalThreads,
    };
    println!(
        "energy: {} configurations at size {}, compared across {} process-node presets",
        spec.len(),
        size.name(),
        ProcessNode::ALL.len()
    );
    let summary = run_sweep(&spec, &options);
    let points = config_points(&summary.outcomes);
    let models: Vec<EnergyModel> = ProcessNode::ALL.iter().map(|n| n.model()).collect();

    // Per-preset frontier membership, computed on the shared points.
    let frontiers: Vec<Vec<String>> = models
        .iter()
        .map(|model| {
            sigcomp_explore::pareto_frontier(&points, model)
                .iter()
                .map(sigcomp_explore::ConfigPoint::label)
                .collect()
        })
        .collect();

    // Per-point figures computed once, before sorting and printing — the
    // comparators and row loop must not re-derive CPI, savings or labels.
    struct Row {
        label: String,
        cpi: f64,
        dynamic: f64,
        totals: Vec<f64>,
    }
    let mut rows: Vec<Row> = points
        .iter()
        .map(|p| Row {
            label: p.label(),
            cpi: p.cpi(),
            dynamic: p.dynamic_energy_saving(&EnergyModel::default()),
            totals: models.iter().map(|m| p.energy_saving(m)).collect(),
        })
        .collect();
    rows.sort_by(|a, b| {
        a.cpi
            .partial_cmp(&b.cpi)
            .expect("CPI is never NaN")
            .then_with(|| a.label.cmp(&b.label))
    });

    println!();
    println!("Total-energy saving by process node (* = Pareto-optimal under that node)");
    print!("{:<44} {:>8} {:>9}", "configuration", "CPI", "dynamic");
    for node in ProcessNode::ALL {
        print!(" {:>13}", node.id());
    }
    println!();
    for row in &rows {
        print!(
            "{:<44} {:>8.3} {:>8.1}%",
            row.label,
            row.cpi,
            row.dynamic * 100.0
        );
        for (ni, total) in row.totals.iter().enumerate() {
            let star = if frontiers[ni].contains(&row.label) {
                "*"
            } else {
                " "
            };
            print!(" {:>11.1}%{star}", total * 100.0);
        }
        println!();
    }
    println!();
    for (ni, node) in ProcessNode::ALL.iter().enumerate() {
        println!(
            "frontier under {:<13} ({} configurations): {}",
            node.id(),
            frontiers[ni].len(),
            frontiers[ni].join(", ")
        );
    }
    ExitCode::SUCCESS
}

/// Runs the HTTP serving front-end (blocks until the listener fails).
fn run_serve_command(args: &SweepArgs) -> ExitCode {
    let disk_cache = open_cache(args, "serve");
    let backend = match args.backend.unwrap_or(BackendChoice::Local) {
        BackendChoice::Local => ExecBackend::LocalThreads,
        BackendChoice::Subprocess(shards) => {
            if args.no_cache {
                return fail("--backend subprocess requires the result cache (drop --no-cache)");
            }
            if disk_cache.is_none() {
                eprintln!(
                    "serve: --backend subprocess requires the result cache, \
                     which could not be opened"
                );
                return ExitCode::FAILURE;
            }
            match subprocess_backend(shards, &[], args.obs_log.as_deref()) {
                Ok(backend) => backend,
                Err(e) => {
                    eprintln!("serve: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let config = ServeConfig {
        addr: args.addr.clone().unwrap_or_default(),
        batch: BatchConfig {
            max_batch: args.max_batch.unwrap_or(0),
            queue_capacity: 0,
            sim_workers: args.workers,
            disk_cache,
            backend,
            memo_capacity: args.memo_cap.unwrap_or(0),
        },
        finished_tickets: args.ticket_cap.unwrap_or(0),
        max_conns: args.max_conns.unwrap_or(0),
        read_deadline: std::time::Duration::from_millis(args.read_deadline_ms.unwrap_or(0)),
        keep_alive: args.keep_alive.unwrap_or(true),
        ..ServeConfig::default()
    };
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve: cannot bind listener: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    println!("serving on http://{addr}");
    println!("  GET  /healthz   liveness probe");
    println!("  GET  /metrics   request/batching/cache counters (+ fleet section)");
    println!("  GET  /metrics.json  full observability registry snapshot");
    println!("  POST /simulate  one configuration -> metrics (batched + deduplicated)");
    println!("  POST /sweep     a design-space slice -> poll ticket (or \"sync\": true)");
    println!("  GET  /jobs/:id  sweep progress and results");
    println!("  POST /register, POST /heartbeat, POST /fleet/dispatch, GET /fleet");
    println!("                  the sigcomp-fleet worker protocol");
    // A worker announces itself to its frontier and keeps heartbeating for
    // as long as it serves; the heartbeater thread dies with the process.
    let heartbeater = args.frontier.clone().map(|frontier| {
        let advertised = args.self_addr.clone().unwrap_or_else(|| addr.to_string());
        let interval = std::time::Duration::from_millis(args.heartbeat_ms.unwrap_or(2000).max(1));
        println!("fleet worker: announcing {advertised} to frontier {frontier}");
        Heartbeater::spawn(frontier, advertised, interval)
    });
    let result = server.run();
    if let Some(heartbeater) = heartbeater {
        heartbeater.stop();
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve: listener failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Prints a frontier's `/fleet` document: its known workers, their
/// liveness/capacity/dispatch counters, and the merged worker obs snapshot.
fn run_fleet_status_command(args: &SweepArgs) -> ExitCode {
    let Some(frontier) = &args.frontier else {
        return fail("fleet status requires --frontier HOST:PORT");
    };
    let timeout = std::time::Duration::from_millis(args.timeout_ms.unwrap_or(5_000));
    match HttpClient::new(timeout).get(frontier, "/fleet") {
        Ok(response) if response.status == 200 => {
            print!("{}", response.body);
            ExitCode::SUCCESS
        }
        Ok(response) => {
            eprintln!(
                "fleet status: {frontier} answered {}: {}",
                response.status,
                response.body.trim()
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("fleet status: cannot reach {frontier}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Runs the self-timed perf harness (or, with `--check`, only the report
/// validator) and writes/validates `BENCH_<label>.json`.
fn run_bench_command(args: &SweepArgs) -> ExitCode {
    if let Some(path) = &args.bench_check {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("bench: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match perf::validate(&text) {
            Ok(()) => {
                println!("{path}: valid {} report", perf::SCHEMA);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let options = perf::BenchOptions {
        quick: args.bench_quick,
        label: args
            .bench_label
            .clone()
            .unwrap_or_else(|| "local".to_owned()),
        corpus: args.bench_corpus.clone().map(std::path::PathBuf::from),
    };
    println!(
        "bench: label {}{}",
        options.label,
        if options.quick { " (quick)" } else { "" }
    );
    let report = match perf::run(&options) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "replay:   {} workloads, {} instructions in {:.2} s ({:.0} instructions/s)",
        report.replay_workloads,
        report.replay.units,
        report.replay.wall_s,
        report.replay.rate()
    );
    println!(
        "sweep:    {} configurations; cold {:.2} s ({:.1} configs/s), \
         warm {:.2} s ({:.1} configs/s), {:.1}x speedup",
        report.sweep_configs,
        report.sweep_cold.wall_s,
        report.sweep_cold.rate(),
        report.sweep_warm.wall_s,
        report.sweep_warm.rate(),
        report.warm_speedup()
    );
    println!(
        "frontier: {} iterations over {} points in {:.2} s ({:.0} points/s)",
        report.frontier_iterations,
        report.frontier.units / report.frontier_iterations.max(1),
        report.frontier.wall_s,
        report.frontier.rate()
    );
    println!(
        "serve:    {} clients x{} pipelined; reactor {} req in {:.2} s ({:.0} req/s, \
         p50 {:.0} us, p99 {:.0} us), thread-per-conn {} req ({:.0} req/s) — {:.1}x keep-alive speedup",
        report.serve.clients,
        report.serve.pipeline_depth,
        report.serve.reactor.units,
        report.serve.reactor.wall_s,
        report.serve.reactor.rate(),
        report.serve.reactor_p50_us,
        report.serve.reactor_p99_us,
        report.serve.threaded.units,
        report.serve.threaded.rate(),
        report.serve.keepalive_speedup()
    );

    let json = report.to_json();
    // Self-check before writing: an emitted report that fails its own
    // schema is a bug, not an artifact.
    if let Err(e) = perf::validate(&json) {
        eprintln!("bench: emitted report fails validation: {e}");
        return ExitCode::FAILURE;
    }
    let path = args
        .bench_out
        .clone()
        .unwrap_or_else(|| format!("BENCH_{}.json", options.label));
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("bench: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");

    // The regression gate: diff the fresh report against a baseline. Any
    // violation (shape mismatch or a >2x throughput regression) is printed
    // by name and fails the run — this is what CI diffs against the
    // checked-in baseline.
    if let Some(baseline_path) = &args.bench_compare {
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("bench: cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match perf::compare(&json, &baseline, perf::DEFAULT_MAX_SLOWDOWN) {
            Ok(lines) => {
                println!("compare vs {baseline_path}:");
                for line in lines {
                    println!("  {line}");
                }
            }
            Err(violations) => {
                for violation in violations {
                    eprintln!("bench: compare vs {baseline_path}: {violation}");
                }
                return ExitCode::FAILURE;
            }
        }
    }

    // Accumulate the perf trajectory: one compact row per measuring run,
    // appended to a rolling document CI archives alongside the full report.
    let trajectory_path = args
        .bench_trajectory
        .clone()
        .unwrap_or_else(|| "BENCH_trajectory.json".to_owned());
    let row = perf::trajectory_row(&report, &head_commit());
    match perf::append_trajectory(std::path::Path::new(&trajectory_path), &row) {
        Ok(rows) => println!("appended to {trajectory_path} ({rows} rows)"),
        Err(e) => {
            eprintln!("bench: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// The short commit hash of `HEAD`, or `"unknown"` outside a git checkout.
fn head_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|hash| hash.trim().to_owned())
        .filter(|hash| !hash.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Parses a `--size` value with the same named error as the global flag.
fn parse_size(raw: &str) -> Result<WorkloadSize, String> {
    WorkloadSize::parse(raw).ok_or_else(|| {
        format!("invalid value '{raw}' for --size (expected tiny, default or large)")
    })
}

/// Records one kernel execution to a `.sctrace` file.
fn record_one(workload: &str, size: WorkloadSize, path: &Path) -> Result<(u64, u64), String> {
    let benchmark = find(workload, size).ok_or_else(|| format!("unknown workload '{workload}'"))?;
    let mut writer = sigcomp_isa::TraceWriter::new();
    writer.set_meta("source", workload);
    writer.set_meta("size", size.name());
    let mut encode_error = None;
    benchmark
        .run_each(|rec| {
            if encode_error.is_none() {
                if let Err(e) = writer.push(rec) {
                    encode_error = Some(e);
                }
            }
        })
        .map_err(|e| format!("kernel {workload} failed: {e}"))?;
    if let Some(e) = encode_error {
        return Err(format!("encoding {workload}: {e}"));
    }
    writer
        .finish_to_path(path)
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok((writer.records(), writer.digest()))
}

fn trace_record(args: &[String]) -> ExitCode {
    let mut size = WorkloadSize::Default;
    let mut out: Option<String> = None;
    let mut all = false;
    let mut workload: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--size" => {
                let Some(raw) = it.next() else {
                    return fail("--size expects a value");
                };
                size = match parse_size(raw) {
                    Ok(s) => s,
                    Err(e) => return fail(&e),
                };
            }
            "--out" | "-o" => {
                let Some(value) = it.next() else {
                    return fail("--out expects a value");
                };
                out = Some(value.clone());
            }
            "--all" => all = true,
            other if other.starts_with('-') => {
                return fail(&format!("unknown option '{other}'"));
            }
            other => {
                if workload.replace(other.to_owned()).is_some() {
                    return fail("trace record expects exactly one workload");
                }
            }
        }
    }
    let Some(out) = out else {
        return fail("trace record requires --out PATH");
    };
    let targets: Vec<(String, std::path::PathBuf)> = match (all, workload) {
        (true, Some(_)) => return fail("--all and a workload name are mutually exclusive"),
        (false, None) => return fail("trace record expects a workload name or --all"),
        (true, None) => {
            let dir = Path::new(&out);
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("trace record: cannot create {out}: {e}");
                return ExitCode::FAILURE;
            }
            suite_names()
                .iter()
                .map(|&name| (name.to_owned(), dir.join(format!("{name}.sctrace"))))
                .collect()
        }
        (false, Some(workload)) => vec![(workload, Path::new(&out).to_path_buf())],
    };
    for (workload, path) in &targets {
        match record_one(workload, size, path) {
            Ok((records, digest)) => println!(
                "recorded {workload} ({}): {records} records, digest {digest:016x} -> {}",
                size.name(),
                path.display()
            ),
            Err(e) => {
                eprintln!("trace record: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn trace_replay(args: &[String]) -> ExitCode {
    let mut file: Option<String> = None;
    let mut schemes: Option<Vec<ExtScheme>> = None;
    let mut orgs: Option<Vec<OrgKind>> = None;
    let mut mems: Option<Vec<MemProfile>> = None;
    let mut node = ProcessNode::Paper180nm;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--energy-model" => {
                let Some(raw) = it.next() else {
                    return fail("--energy-model expects a value");
                };
                let Some(value) = ProcessNode::parse(raw) else {
                    let known: Vec<&str> = ProcessNode::ALL.iter().map(|n| n.id()).collect();
                    return fail(&format!(
                        "invalid value '{raw}' for --energy-model (expected one of {})",
                        known.join(", ")
                    ));
                };
                node = value;
            }
            "--schemes" => {
                let Some(raw) = it.next() else {
                    return fail("--schemes expects a value");
                };
                let Some(value) = parse_list(raw, ExtScheme::parse) else {
                    return fail(&format!("invalid value '{raw}' for --schemes"));
                };
                schemes = Some(value);
            }
            "--orgs" => {
                let Some(raw) = it.next() else {
                    return fail("--orgs expects a value");
                };
                if raw == "all" {
                    orgs = Some(OrgKind::ALL.to_vec());
                } else {
                    let Some(value) = parse_list(raw, OrgKind::parse) else {
                        return fail(&format!("invalid value '{raw}' for --orgs"));
                    };
                    orgs = Some(value);
                }
            }
            "--mems" => {
                let Some(raw) = it.next() else {
                    return fail("--mems expects a value");
                };
                let Some(value) = parse_list(raw, MemProfile::parse) else {
                    return fail(&format!("invalid value '{raw}' for --mems"));
                };
                mems = Some(value);
            }
            other if other.starts_with('-') => {
                return fail(&format!("unknown option '{other}'"));
            }
            other => {
                if file.replace(other.to_owned()).is_some() {
                    return fail("trace replay expects exactly one file");
                }
            }
        }
    }
    let Some(file) = file else {
        return fail("trace replay expects a .sctrace file");
    };
    let input = match TraceInput::load(&file) {
        Ok(input) => input,
        Err(e) => {
            eprintln!("trace replay: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "replaying {} ({} records, digest {:016x})",
        input.name(),
        input.decoded().len(),
        input.digest()
    );
    let mut spec = SweepSpec::full(WorkloadSize::Tiny)
        .no_kernels()
        .trace_files(std::slice::from_ref(&input))
        .mems(&[MemProfile::Paper]);
    if let Some(schemes) = &schemes {
        spec = spec.schemes(schemes);
    }
    if let Some(orgs) = &orgs {
        spec = spec.orgs(orgs);
    }
    if let Some(mems) = &mems {
        spec = spec.mems(mems);
    }
    if spec.is_empty() {
        eprintln!("trace replay: the requested configuration set is empty");
        return ExitCode::FAILURE;
    }
    let summary = run_sweep(&spec, &SweepOptions::default());
    let model = node.model();
    let leaky = model.has_leakage();
    if leaky {
        println!("energy model: {node}");
    }
    print!(
        "{:<44} {:>16} {:>12} {:>12} {:>7} {:>8}",
        "configuration", "job id", "instructions", "cycles", "CPI", "saving"
    );
    if leaky {
        print!(" {:>8} {:>8}", "leakage", "total");
    }
    println!();
    for outcome in &summary.outcomes {
        print!(
            "{:<44} {:016x} {:>12} {:>12} {:>7.3} {:>7.1}%",
            outcome.spec.label(),
            outcome.spec.job_id(),
            outcome.metrics.instructions,
            outcome.metrics.cycles,
            outcome.cpi(),
            outcome.dynamic_energy_saving(&model) * 100.0
        );
        if leaky {
            print!(
                " {:>7.1}% {:>7.1}%",
                outcome.leakage_saving(&model) * 100.0,
                outcome.energy_saving(&model) * 100.0
            );
        }
        println!();
    }
    ExitCode::SUCCESS
}

fn trace_stat(args: &[String]) -> ExitCode {
    let [file] = args else {
        return fail("trace stat expects exactly one .sctrace file");
    };
    let mut reader = match TraceReader::open(file) {
        Ok(reader) => reader,
        Err(e) => {
            eprintln!("trace stat: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{file}:");
    println!("  records  {}", reader.records());
    println!("  digest   {:016x}", reader.declared_digest());
    for (key, value) in reader.meta().to_vec() {
        println!("  {key:<8} {value}");
    }
    let (mut loads, mut stores, mut branches, mut taken, mut writebacks) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut stats = SigStats::new();
    loop {
        match reader.next_record() {
            Ok(Some(rec)) => {
                stats.observe(&rec);
                if let Some(mem) = rec.mem {
                    if mem.is_store {
                        stores += 1;
                    } else {
                        loads += 1;
                    }
                }
                if let Some(branch) = rec.branch {
                    branches += 1;
                    taken += u64::from(branch.taken);
                }
                writebacks += u64::from(rec.writeback.is_some());
            }
            Ok(None) => break,
            Err(e) => {
                eprintln!("trace stat: {file}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("  loads      {loads}");
    println!("  stores     {stores}");
    println!("  branches   {branches} ({taken} taken)");
    println!("  writebacks {writebacks}");
    print!(
        "{}",
        histogram(
            "significant-byte patterns over the recorded operand values",
            "pattern",
            &pattern_histogram_rows(&stats)
        )
    );
    println!("  payload verified (count and digest match the header)");
    ExitCode::SUCCESS
}

fn trace_golden(args: &[String]) -> ExitCode {
    let [dir] = args else {
        return fail("trace golden expects exactly one output directory");
    };
    match golden::write_corpus(Path::new(dir)) {
        Ok(paths) => {
            for path in paths {
                println!("wrote {}", path.display());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace golden: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Runs `repro analyze <workload|file.sctrace>`: builds the CFG, solves the
/// width fixpoint and prints the static significance picture without
/// simulating a cycle. Trace files are reconstructed from their recorded
/// (pc, word) pairs and analyzed under an unknown entry state — and since
/// the dynamic values are right there, every record is differentially
/// verified against the computed bounds on the spot.
fn run_analyze_command(args: &[String]) -> ExitCode {
    let mut target: Option<String> = None;
    let mut size = WorkloadSize::Default;
    let mut csv: Option<String> = None;
    let mut json: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--size" => {
                let Some(raw) = it.next() else {
                    return fail("--size expects a value");
                };
                size = match parse_size(raw) {
                    Ok(value) => value,
                    Err(e) => return fail(&e),
                };
            }
            "--csv" => {
                let Some(value) = it.next() else {
                    return fail("--csv expects a value");
                };
                csv = Some(value.clone());
            }
            "--json" => {
                let Some(value) = it.next() else {
                    return fail("--json expects a value");
                };
                json = Some(value.clone());
            }
            other if other.starts_with('-') => {
                return fail(&format!("unknown analyze option '{other}'"));
            }
            other => {
                if target.is_some() {
                    return fail("analyze expects exactly one workload or .sctrace file");
                }
                target = Some(other.to_owned());
            }
        }
    }
    let Some(target) = target else {
        return fail("analyze expects a workload name or a .sctrace file");
    };

    let is_trace = target.ends_with(".sctrace") || Path::new(&target).is_file();
    let report = if is_trace {
        let mut reader = match TraceReader::open(&target) {
            Ok(reader) => reader,
            Err(e) => {
                eprintln!("analyze: cannot read trace {target}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut records = Vec::new();
        loop {
            match reader.next_record() {
                Ok(Some(rec)) => records.push(rec),
                Ok(None) => break,
                Err(e) => {
                    eprintln!("analyze: {target}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let Some(program) = program_from_records(&records) else {
            eprintln!("analyze: {target}: the trace is empty, nothing to reconstruct");
            return ExitCode::FAILURE;
        };
        let analysis = analyze_program(&program, EntryState::Unknown);
        println!(
            "{target}: program reconstructed from {} records",
            records.len()
        );
        match verify_trace_against_bounds(&analysis, &records) {
            Ok(verified) => println!(
                "verified {} records ({} operand values) against the static bounds",
                verified.records, verified.values_checked
            ),
            Err(e) => {
                eprintln!("analyze: {target}: {e}");
                return ExitCode::FAILURE;
            }
        }
        WidthReport::from_analysis(&target, &analysis)
    } else {
        let Some(bench) = find(&target, size) else {
            return fail(&format!(
                "unknown workload '{target}' (expected one of {}, or an .sctrace file)",
                suite_names().join(", ")
            ));
        };
        let analysis = analyze_program(bench.program(), EntryState::KernelBoot);
        println!("{target} ({}): static width analysis", size.name());
        WidthReport::from_analysis(&target, &analysis)
    };

    println!(
        "  blocks        {} ({} reachable)",
        report.blocks, report.reachable_blocks
    );
    println!("  instructions  {}", report.instructions);
    println!("  operand slots {}", report.operand_slots());
    println!(
        "  mean bound    {:.2} bytes (predicted saving {:.1} %)",
        report.mean_bound_bytes(),
        report.predicted_saving() * 100.0
    );
    println!();
    print!(
        "{}",
        histogram(
            "Static width bounds (operand slots proven to fit k bytes)",
            "bound",
            &report.histogram_rows()
        )
    );
    println!();
    println!(
        "{:<10} {:>8} {:>14} {:>12}",
        "op", "count", "mean op bytes", "result bound"
    );
    for row in &report.per_op {
        println!(
            "{:<10} {:>8} {:>14.2} {:>12}",
            row.op.mnemonic(),
            row.count,
            row.mean_operand_bytes,
            row.result.map_or("-", Width::label)
        );
    }

    for (path, content, what) in [
        (csv.as_deref(), report.to_csv(), "CSV"),
        (json.as_deref(), report.to_json(), "JSON"),
    ] {
        if let Some(path) = path {
            if let Err(e) = std::fs::write(path, content) {
                eprintln!("analyze: cannot write {what} to {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {what} to {path}");
        }
    }
    ExitCode::SUCCESS
}

/// Runs one shard of a sharded sweep (the subprocess-backend worker
/// protocol; see `sigcomp_explore::backend`): reads the deduped job list
/// from stdin — one wire line per job, sorted by job id by the parent —
/// executes the lines whose 0-based index satisfies `index % N == I` on the
/// in-process executor against the shared result cache, and reports per-job
/// provenance on stdout for the parent to verify.
fn run_worker_command(args: &[String]) -> ExitCode {
    let mut shard: Option<(usize, usize)> = None;
    let mut cache_dir: Option<String> = None;
    let mut workers: Option<usize> = None;
    let mut trace_paths: Vec<String> = Vec::new();
    let mut obs_log: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--shard" => {
                let Some(raw) = it.next() else {
                    return fail("--shard expects a value");
                };
                shard = match parse_shard(raw) {
                    Ok(parsed) => Some(parsed),
                    Err(e) => return fail(&format!("invalid value '{raw}' for --shard: {e}")),
                };
            }
            "--cache" => {
                let Some(value) = it.next() else {
                    return fail("--cache expects a value");
                };
                cache_dir = Some(value.clone());
            }
            "--workers" => {
                let Some(raw) = it.next() else {
                    return fail("--workers expects a value");
                };
                let Some(value) = raw.parse().ok().filter(|&n: &usize| n > 0) else {
                    return fail(&format!(
                        "invalid value '{raw}' for --workers (expected a positive integer)"
                    ));
                };
                workers = Some(value);
            }
            "--traces" => {
                let Some(raw) = it.next() else {
                    return fail("--traces expects a value");
                };
                trace_paths = raw
                    .split(',')
                    .map(str::trim)
                    .filter(|p| !p.is_empty())
                    .map(str::to_owned)
                    .collect();
            }
            "--obs-log" => {
                let Some(value) = it.next() else {
                    return fail("--obs-log expects a value");
                };
                obs_log = Some(value.clone());
            }
            other => return fail(&format!("unknown worker option '{other}'")),
        }
    }
    let Some((index, count)) = shard else {
        return fail("worker requires --shard INDEX/COUNT");
    };
    if let Some(path) = &obs_log {
        if let Err(e) = sigcomp_obs::global().open_jsonl_log(Path::new(path)) {
            eprintln!("worker: cannot open obs log {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let Some(cache_dir) = cache_dir else {
        return fail("worker requires --cache DIR (the shared merge point)");
    };
    let cache = match ResultCache::open(&cache_dir) {
        Ok(cache) => cache,
        Err(e) => {
            eprintln!("worker: cannot open result cache at {cache_dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut traces = Vec::with_capacity(trace_paths.len());
    for path in &trace_paths {
        match TraceInput::load(path) {
            Ok(input) => traces.push(input),
            Err(e) => {
                eprintln!("worker: cannot read trace {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Drain stdin to EOF *before* simulating — the parent relies on this to
    // feed every worker without deadlocking against their reports.
    let mut wire = String::new();
    if let Err(e) = std::io::Read::read_to_string(&mut std::io::stdin().lock(), &mut wire) {
        eprintln!("worker: cannot read the job list from stdin: {e}");
        return ExitCode::FAILURE;
    }
    let mut jobs: Vec<JobSpec> = Vec::new();
    for (rank, line) in wire.lines().filter(|l| !l.trim().is_empty()).enumerate() {
        // Every line is validated — a malformed list must fail loudly even
        // if the bad line belongs to a sibling shard.
        let job = match JobSpec::from_wire(line) {
            Ok(job) => job,
            Err(e) => {
                eprintln!("worker: {e}");
                return ExitCode::FAILURE;
            }
        };
        if rank % count == index {
            jobs.push(job);
        }
    }
    for job in &jobs {
        if let TraceSource::File { digest } = job.source {
            if !traces.iter().any(|t| t.digest() == digest) {
                eprintln!(
                    "worker: no trace with digest {digest:016x} for job {} \
                     (pass its .sctrace file via --traces)",
                    job.label()
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let options = SweepOptions {
        workers,
        cache: Some(cache),
        backend: ExecBackend::LocalThreads,
    };
    let summary = match try_run_jobs_traced(&jobs, &traces, &options) {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("worker: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{WORKER_HEADER} shard {index}/{count}");
    for outcome in &summary.outcomes {
        println!(
            "job {:016x} {}",
            outcome.spec.job_id(),
            if outcome.from_cache {
                "cached"
            } else {
                "simulated"
            }
        );
    }
    // The registry snapshot travels home on the report stream (v2 `obs`
    // lines, strictly before `done`) so the parent can merge a per-shard
    // view that sums to the single-process run.
    for line in sigcomp_obs::global().snapshot().to_wire().lines() {
        println!("obs {line}");
    }
    println!(
        "done jobs={} simulated={} cached={}",
        summary.outcomes.len(),
        summary.simulated(),
        summary.cached()
    );
    ExitCode::SUCCESS
}

/// Dispatches `repro trace <subcommand> …`.
fn run_trace_command(args: &[String]) -> ExitCode {
    let Some(verb) = args.first() else {
        return fail("trace expects a subcommand (record, replay, stat or golden)");
    };
    let rest = &args[1..];
    match verb.as_str() {
        "record" => trace_record(rest),
        "replay" => trace_replay(rest),
        "stat" => trace_stat(rest),
        "golden" => trace_golden(rest),
        other => fail(&format!("unknown trace subcommand '{other}'")),
    }
}

fn main() -> ExitCode {
    let mut size = WorkloadSize::Default;
    let mut commands: Vec<String> = Vec::new();
    let mut sweep_args = SweepArgs::default();

    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    // `trace` and `worker` own their own argument grammars (subcommand +
    // positional files / the shard protocol flags), so they are dispatched
    // before the global flag loop.
    if argv.first().map(String::as_str) == Some("trace") {
        return run_trace_command(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("worker") {
        return run_worker_command(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("analyze") {
        return run_analyze_command(&argv[1..]);
    }
    // `fleet <verb>` reuses the global flag grammar (a fleet sweep takes
    // the same axes/cache/export flags as a plain sweep): the verb is
    // rewritten into an internal command name and the remaining arguments
    // fall through to the flag loop below.
    if argv.first().map(String::as_str) == Some("fleet") {
        let command = match argv.get(1).map(String::as_str) {
            Some("serve") => "fleet-serve",
            Some("sweep") => "fleet-sweep",
            Some("status") => "fleet-status",
            Some(other) => {
                return fail(&format!(
                    "unknown fleet subcommand '{other}' (expected serve, sweep or status)"
                ))
            }
            None => return fail("fleet expects a subcommand (serve, sweep or status)"),
        };
        commands.push(command.to_owned());
        argv.drain(..2);
    }

    let mut args = argv.into_iter();
    // An option's value: `--flag VALUE`. A missing value is reported by
    // name rather than as a generic usage failure.
    macro_rules! value_of {
        ($flag:expr) => {
            match args.next() {
                Some(value) => value,
                None => return fail(&format!("{} expects a value", $flag)),
            }
        };
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--size" => {
                let raw = value_of!("--size");
                size = match parse_size(&raw) {
                    Ok(value) => value,
                    Err(e) => return fail(&e),
                };
            }
            "--workers" => {
                let raw = value_of!("--workers");
                let Some(value) = raw.parse().ok().filter(|&n: &usize| n > 0) else {
                    return fail(&format!(
                        "invalid value '{raw}' for --workers (expected a positive integer)"
                    ));
                };
                sweep_args.workers = Some(value);
            }
            "--max-batch" => {
                let raw = value_of!("--max-batch");
                let Some(value) = raw.parse().ok().filter(|&n: &usize| n > 0) else {
                    return fail(&format!(
                        "invalid value '{raw}' for --max-batch (expected a positive integer)"
                    ));
                };
                sweep_args.max_batch = Some(value);
            }
            "--shards" => {
                let raw = value_of!("--shards");
                let Some(value) = raw.parse().ok().filter(|&n: &usize| n > 0) else {
                    return fail(&format!(
                        "invalid value '{raw}' for --shards (expected a positive integer)"
                    ));
                };
                sweep_args.shards = Some(value);
            }
            "--backend" => {
                let raw = value_of!("--backend");
                sweep_args.backend = match parse_backend(&raw) {
                    Ok(choice) => Some(choice),
                    Err(e) => return fail(&e),
                };
            }
            "--memo-cap" => {
                let raw = value_of!("--memo-cap");
                let Some(value) = raw.parse().ok().filter(|&n: &usize| n > 0) else {
                    return fail(&format!(
                        "invalid value '{raw}' for --memo-cap (expected a positive integer)"
                    ));
                };
                sweep_args.memo_cap = Some(value);
            }
            "--ticket-cap" => {
                let raw = value_of!("--ticket-cap");
                let Some(value) = raw.parse().ok().filter(|&n: &usize| n > 0) else {
                    return fail(&format!(
                        "invalid value '{raw}' for --ticket-cap (expected a positive integer)"
                    ));
                };
                sweep_args.ticket_cap = Some(value);
            }
            "--max-conns" => {
                let raw = value_of!("--max-conns");
                let Some(value) = raw.parse().ok().filter(|&n: &usize| n > 0) else {
                    return fail(&format!(
                        "invalid value '{raw}' for --max-conns (expected a positive integer)"
                    ));
                };
                sweep_args.max_conns = Some(value);
            }
            "--read-deadline-ms" => {
                let raw = value_of!("--read-deadline-ms");
                let Some(value) = raw.parse().ok().filter(|&n: &u64| n > 0) else {
                    return fail(&format!(
                        "invalid value '{raw}' for --read-deadline-ms \
                         (expected a positive integer)"
                    ));
                };
                sweep_args.read_deadline_ms = Some(value);
            }
            "--keep-alive" => {
                let raw = value_of!("--keep-alive");
                sweep_args.keep_alive = match raw.as_str() {
                    "on" => Some(true),
                    "off" => Some(false),
                    _ => {
                        return fail(&format!(
                            "invalid value '{raw}' for --keep-alive (expected on or off)"
                        ))
                    }
                };
            }
            "--schemes" => {
                let raw = value_of!("--schemes");
                let Some(value) = parse_list(&raw, ExtScheme::parse) else {
                    return fail(&format!(
                        "invalid value '{raw}' for --schemes (expected a comma-separated \
                         subset of 2bit, 3bit, halfword)"
                    ));
                };
                sweep_args.schemes = Some(value);
            }
            "--orgs" => {
                let raw = value_of!("--orgs");
                if raw == "all" {
                    sweep_args.orgs = Some(OrgKind::ALL.to_vec());
                } else {
                    let Some(value) = parse_list(&raw, OrgKind::parse) else {
                        let known: Vec<&str> = OrgKind::ALL.iter().map(|o| o.id()).collect();
                        return fail(&format!(
                            "invalid value '{raw}' for --orgs (expected 'all' or a \
                             comma-separated subset of {})",
                            known.join(", ")
                        ));
                    };
                    sweep_args.orgs = Some(value);
                }
            }
            "--mems" => {
                let raw = value_of!("--mems");
                let Some(value) = parse_list(&raw, MemProfile::parse) else {
                    return fail(&format!(
                        "invalid value '{raw}' for --mems (expected a comma-separated \
                         subset of paper, small-l1, wide-l2, slow-memory)"
                    ));
                };
                sweep_args.mems = Some(value);
            }
            "--traces" => {
                let raw = value_of!("--traces");
                let paths: Vec<String> = raw
                    .split(',')
                    .map(str::trim)
                    .filter(|p| !p.is_empty())
                    .map(str::to_owned)
                    .collect();
                if paths.is_empty() {
                    return fail(&format!(
                        "invalid value '{raw}' for --traces (expected a comma-separated \
                         list of .sctrace paths)"
                    ));
                }
                sweep_args.traces = Some(paths);
            }
            "--energy-model" => {
                let raw = value_of!("--energy-model");
                let Some(value) = parse_list(&raw, ProcessNode::parse) else {
                    let known: Vec<&str> = ProcessNode::ALL.iter().map(|n| n.id()).collect();
                    return fail(&format!(
                        "invalid value '{raw}' for --energy-model (expected a comma-separated \
                         subset of {})",
                        known.join(", ")
                    ));
                };
                sweep_args.energy_models = Some(value);
            }
            "--cache" => sweep_args.cache_dir = Some(value_of!("--cache")),
            "--no-cache" => sweep_args.no_cache = true,
            "--csv" => sweep_args.csv = Some(value_of!("--csv")),
            "--json" => sweep_args.json = Some(value_of!("--json")),
            "--addr" => sweep_args.addr = Some(value_of!("--addr")),
            "--obs-log" => sweep_args.obs_log = Some(value_of!("--obs-log")),
            "--quick" => sweep_args.bench_quick = true,
            "--label" => sweep_args.bench_label = Some(value_of!("--label")),
            "--out" => sweep_args.bench_out = Some(value_of!("--out")),
            "--corpus" => sweep_args.bench_corpus = Some(value_of!("--corpus")),
            "--check" => sweep_args.bench_check = Some(value_of!("--check")),
            "--compare" => sweep_args.bench_compare = Some(value_of!("--compare")),
            "--trajectory" => sweep_args.bench_trajectory = Some(value_of!("--trajectory")),
            "--fleet" => {
                let raw = value_of!("--fleet");
                let workers: Vec<String> = raw
                    .split(',')
                    .map(str::trim)
                    .filter(|a| !a.is_empty())
                    .map(str::to_owned)
                    .collect();
                if workers.is_empty() {
                    return fail(&format!(
                        "invalid value '{raw}' for --fleet (expected a comma-separated \
                         list of host:port worker addresses)"
                    ));
                }
                sweep_args.fleet_workers = Some(workers);
            }
            "--frontier" => sweep_args.frontier = Some(value_of!("--frontier")),
            "--self-addr" => sweep_args.self_addr = Some(value_of!("--self-addr")),
            "--heartbeat-ms" => {
                let raw = value_of!("--heartbeat-ms");
                let Some(value) = raw.parse().ok().filter(|&n: &u64| n > 0) else {
                    return fail(&format!(
                        "invalid value '{raw}' for --heartbeat-ms (expected a positive integer)"
                    ));
                };
                sweep_args.heartbeat_ms = Some(value);
            }
            "--timeout-ms" => {
                let raw = value_of!("--timeout-ms");
                let Some(value) = raw.parse().ok().filter(|&n: &u64| n > 0) else {
                    return fail(&format!(
                        "invalid value '{raw}' for --timeout-ms (expected a positive integer)"
                    ));
                };
                sweep_args.timeout_ms = Some(value);
            }
            "--attempts" => {
                let raw = value_of!("--attempts");
                let Some(value) = raw.parse().ok().filter(|&n: &u32| n > 0) else {
                    return fail(&format!(
                        "invalid value '{raw}' for --attempts (expected a positive integer)"
                    ));
                };
                sweep_args.attempts = Some(value);
            }
            "--static-prune" => {
                let raw = value_of!("--static-prune");
                let Some(value) = raw
                    .parse()
                    .ok()
                    .filter(|&p: &f64| p.is_finite() && p >= 0.0)
                else {
                    return fail(&format!(
                        "invalid value '{raw}' for --static-prune \
                         (expected a non-negative saving percentage)"
                    ));
                };
                sweep_args.static_prune = Some(value);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return fail(&format!("unknown option '{other}'"));
            }
            // `trace` and `worker` own their own grammars (their option
            // flags would otherwise be misreported by this loop), so a
            // misplaced one gets a pointed error instead of
            // "unknown option '--out'".
            "trace" => {
                return fail(
                    "'trace' must be the first argument \
                     (e.g. `repro trace record rawcaudio --size tiny --out f.sctrace`)",
                );
            }
            "worker" => {
                return fail(
                    "'worker' must be the first argument \
                     (e.g. `repro worker --shard 0/2 --cache DIR`)",
                );
            }
            "analyze" => {
                return fail(
                    "'analyze' must be the first argument \
                     (e.g. `repro analyze rawcaudio --size tiny`)",
                );
            }
            "fleet" => {
                return fail(
                    "'fleet' must be the first argument \
                     (e.g. `repro fleet sweep --fleet host:port --cache DIR`)",
                );
            }
            other => commands.push(other.to_owned()),
        }
    }
    if commands.is_empty() {
        commands.push("all".to_owned());
    }

    // Subcommand-specific flags must not be silently ignored: a user who
    // passes `--csv` without `sweep` (or `--addr` without `serve`) would
    // otherwise believe the flag took effect.
    let runs = |command: &str| commands.iter().any(|c| c == command);
    let sweeps = runs("sweep") || runs("fleet-sweep");
    let serves = runs("serve") || runs("fleet-serve");
    if !runs("sweep") && sweep_args.shards.is_some() {
        return fail("--shards only applies to the sweep subcommand");
    }
    if !sweeps {
        for (set, flag) in [
            (sweep_args.traces.is_some(), "--traces"),
            (sweep_args.energy_models.is_some(), "--energy-model"),
            (sweep_args.csv.is_some(), "--csv"),
            (sweep_args.json.is_some(), "--json"),
            (sweep_args.static_prune.is_some(), "--static-prune"),
        ] {
            if set {
                return fail(&format!(
                    "{flag} only applies to the sweep and fleet sweep subcommands"
                ));
            }
        }
    }
    if !sweeps && !runs("energy") {
        for (set, flag) in [
            (sweep_args.schemes.is_some(), "--schemes"),
            (sweep_args.orgs.is_some(), "--orgs"),
            (sweep_args.mems.is_some(), "--mems"),
        ] {
            if set {
                return fail(&format!(
                    "{flag} only applies to the sweep, fleet sweep and energy subcommands"
                ));
            }
        }
    }
    if !serves {
        for (set, flag) in [
            (sweep_args.addr.is_some(), "--addr"),
            (sweep_args.max_batch.is_some(), "--max-batch"),
            (sweep_args.backend.is_some(), "--backend"),
            (sweep_args.memo_cap.is_some(), "--memo-cap"),
            (sweep_args.ticket_cap.is_some(), "--ticket-cap"),
            (sweep_args.max_conns.is_some(), "--max-conns"),
            (sweep_args.read_deadline_ms.is_some(), "--read-deadline-ms"),
            (sweep_args.keep_alive.is_some(), "--keep-alive"),
            (sweep_args.self_addr.is_some(), "--self-addr"),
            (sweep_args.heartbeat_ms.is_some(), "--heartbeat-ms"),
        ] {
            if set {
                return fail(&format!(
                    "{flag} only applies to the serve and fleet serve subcommands"
                ));
            }
        }
    }
    if !serves && !runs("fleet-status") && sweep_args.frontier.is_some() {
        return fail("--frontier only applies to the serve and fleet status subcommands");
    }
    if !runs("fleet-sweep") && sweep_args.fleet_workers.is_some() {
        return fail("--fleet only applies to the fleet sweep subcommand");
    }
    if !runs("fleet-sweep") && sweep_args.attempts.is_some() {
        return fail("--attempts only applies to the fleet sweep subcommand");
    }
    if !runs("fleet-sweep") && !runs("fleet-status") && sweep_args.timeout_ms.is_some() {
        return fail("--timeout-ms only applies to the fleet sweep and fleet status subcommands");
    }
    if !runs("bench") {
        for (set, flag) in [
            (sweep_args.bench_quick, "--quick"),
            (sweep_args.bench_label.is_some(), "--label"),
            (sweep_args.bench_out.is_some(), "--out"),
            (sweep_args.bench_corpus.is_some(), "--corpus"),
            (sweep_args.bench_check.is_some(), "--check"),
            (sweep_args.bench_compare.is_some(), "--compare"),
            (sweep_args.bench_trajectory.is_some(), "--trajectory"),
        ] {
            if set {
                return fail(&format!("{flag} only applies to the bench subcommand"));
            }
        }
    }
    if !sweeps && !serves && !runs("bench") && sweep_args.obs_log.is_some() {
        return fail("--obs-log only applies to the sweep, serve and bench subcommands");
    }
    if !sweeps
        && !runs("energy")
        && !serves
        && (sweep_args.workers.is_some() || sweep_args.no_cache || sweep_args.cache_dir.is_some())
    {
        return fail(
            "--workers/--cache/--no-cache only apply to the sweep, energy and serve subcommands",
        );
    }

    // One JSONL event stream per process: opened up front so every
    // instrumented path of every requested subcommand feeds it.
    if let Some(path) = &sweep_args.obs_log {
        if let Err(e) = sigcomp_obs::global().open_jsonl_log(Path::new(path)) {
            eprintln!("repro: cannot open obs log {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    // The activity studies feed several tables; run them lazily and only once.
    let mut byte_rows = None;
    let mut half_rows = None;
    let mut byte_activity = |size: WorkloadSize| {
        byte_rows
            .get_or_insert_with(|| activity_study(size, &AnalyzerConfig::paper_byte()))
            .clone()
    };
    let mut half_activity = |size: WorkloadSize| {
        half_rows
            .get_or_insert_with(|| activity_study(size, &AnalyzerConfig::paper_halfword()))
            .clone()
    };

    for command in &commands {
        let expanded: Vec<&str> = if command == "all" {
            vec![
                "table1",
                "table2",
                "table3",
                "table4",
                "table5",
                "table6",
                "fig4",
                "fig6",
                "fig8",
                "fig10",
                "bottleneck",
            ]
        } else {
            vec![command.as_str()]
        };
        for cmd in expanded {
            match cmd {
                "table1" => print!("{}", table1(&merged_stats(&byte_activity(size)))),
                "table2" => print!("{}", table2()),
                "table3" => print!("{}", table3(&merged_stats(&byte_activity(size)))),
                "table4" => print!("{}", table4()),
                "table5" => print!(
                    "{}",
                    activity_table(&byte_activity(size), ExtScheme::ThreeBit)
                ),
                "table6" => print!(
                    "{}",
                    activity_table(&half_activity(size), ExtScheme::Halfword)
                ),
                "fig4" => {
                    let kinds = figure_orgs(4);
                    print!(
                        "{}",
                        figure(
                            "Figure 4: CPI of the byte-serial and halfword-serial pipelines",
                            &cpi_study(size, &kinds),
                            &kinds
                        )
                    );
                }
                "fig6" => {
                    let kinds = figure_orgs(6);
                    print!(
                        "{}",
                        figure(
                            "Figure 6: CPI of the byte semi-parallel pipeline",
                            &cpi_study(size, &kinds),
                            &kinds
                        )
                    );
                }
                "fig8" => {
                    let kinds = figure_orgs(8);
                    print!(
                        "{}",
                        figure(
                            "Figure 8: CPI of the byte-parallel skewed pipeline",
                            &cpi_study(size, &kinds),
                            &kinds
                        )
                    );
                }
                "fig10" => {
                    let kinds = figure_orgs(10);
                    print!(
                        "{}",
                        figure(
                            "Figure 10: CPI of the byte-parallel compressed and skewed+bypass pipelines",
                            &cpi_study(size, &kinds),
                            &kinds
                        )
                    );
                }
                "bottleneck" => print!("{}", bottleneck(size)),
                "sweep" => {
                    let code = run_sweep_command(size, &sweep_args, false);
                    if code != ExitCode::SUCCESS {
                        return code;
                    }
                }
                "fleet-sweep" => {
                    let code = run_sweep_command(size, &sweep_args, true);
                    if code != ExitCode::SUCCESS {
                        return code;
                    }
                }
                "fleet-status" => {
                    let code = run_fleet_status_command(&sweep_args);
                    if code != ExitCode::SUCCESS {
                        return code;
                    }
                }
                "energy" => {
                    let code = run_energy_command(size, &sweep_args);
                    if code != ExitCode::SUCCESS {
                        return code;
                    }
                }
                "serve" | "fleet-serve" => return run_serve_command(&sweep_args),
                "bench" => {
                    let code = run_bench_command(&sweep_args);
                    if code != ExitCode::SUCCESS {
                        return code;
                    }
                }
                other => return fail(&format!("unknown command '{other}'")),
            }
            println!();
        }
    }
    ExitCode::SUCCESS
}
