//! `repro` — regenerate every table and figure of the paper, and run
//! design-space sweeps.
//!
//! ```text
//! repro [--size tiny|default|large] [table1|table2|table3|table4|table5|table6|
//!        fig4|fig6|fig8|fig10|bottleneck|sweep|all]
//!
//! sweep options:
//!   --workers N          worker threads (default: available parallelism)
//!   --schemes a,b        extension schemes: 2bit,3bit,halfword (default: all)
//!   --orgs a,b           organizations by id, or "all" (default: all)
//!   --mems a,b           memory profiles: paper,small-l1,wide-l2,slow-memory
//!                        (default: paper)
//!   --cache DIR          result-cache directory (default: target/sweep-cache)
//!   --no-cache           disable the result cache
//!   --csv PATH           write per-job results as CSV
//!   --json PATH          write per-job results as JSON
//! ```
//!
//! With no subcommand (or `all`) every paper artefact is printed in paper
//! order (`all` does not include `sweep`).

use sigcomp::analyzer::AnalyzerConfig;
use sigcomp::{EnergyModel, ExtScheme};
use sigcomp_bench::{
    activity_study, activity_table, bottleneck, cpi_study, figure, figure_orgs, merged_stats,
    table1, table2, table3, table4,
};
use sigcomp_explore::{
    config_points, frontier_table, run_sweep, to_csv, to_json, MemProfile, ResultCache,
    SweepOptions, SweepSpec,
};
use sigcomp_pipeline::OrgKind;
use sigcomp_workloads::WorkloadSize;
use std::process::ExitCode;

fn parse_size(value: &str) -> Option<WorkloadSize> {
    WorkloadSize::parse(value)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [--size tiny|default|large] \
         [table1|table2|table3|table4|table5|table6|fig4|fig6|fig8|fig10|bottleneck|sweep|all]\n\
         sweep options: [--workers N] [--schemes 2bit,3bit,halfword] [--orgs all|id,id,...]\n\
         [--mems paper,small-l1,wide-l2,slow-memory] [--cache DIR] [--no-cache]\n\
         [--csv PATH] [--json PATH]"
    );
    ExitCode::FAILURE
}

/// Options that only affect the `sweep` subcommand.
#[derive(Default)]
struct SweepArgs {
    workers: Option<usize>,
    schemes: Option<Vec<ExtScheme>>,
    orgs: Option<Vec<OrgKind>>,
    mems: Option<Vec<MemProfile>>,
    cache_dir: Option<String>,
    no_cache: bool,
    csv: Option<String>,
    json: Option<String>,
}

fn parse_list<T>(value: &str, parse: impl Fn(&str) -> Option<T>) -> Option<Vec<T>> {
    value.split(',').map(|part| parse(part.trim())).collect()
}

fn run_sweep_command(size: WorkloadSize, args: &SweepArgs) -> ExitCode {
    let mut spec = SweepSpec::full(size).mems(&[MemProfile::Paper]);
    if let Some(schemes) = &args.schemes {
        spec = spec.schemes(schemes);
    }
    if let Some(orgs) = &args.orgs {
        spec = spec.orgs(orgs);
    }
    if let Some(mems) = &args.mems {
        spec = spec.mems(mems);
    }
    if spec.is_empty() {
        eprintln!("sweep: the requested design space is empty");
        return ExitCode::FAILURE;
    }

    let mut options = SweepOptions {
        workers: args.workers,
        cache: None,
    };
    if !args.no_cache {
        let dir = args.cache_dir.as_deref().unwrap_or("target/sweep-cache");
        match ResultCache::open(dir) {
            Ok(cache) => options.cache = Some(cache),
            Err(e) => {
                eprintln!("sweep: cannot open result cache at {dir}: {e}; caching disabled");
            }
        }
    }

    println!(
        "sweep: {} configurations at size {}",
        spec.len(),
        size.name()
    );
    let summary = run_sweep(&spec, &options);
    println!(
        "ran on {} workers in {:.2} s: {} simulated, {} from cache",
        summary.workers,
        summary.wall.as_secs_f64(),
        summary.simulated(),
        summary.cached()
    );
    let loads: Vec<String> = summary
        .worker_loads
        .iter()
        .map(|(jobs, steals)| format!("{jobs}/{steals}"))
        .collect();
    println!("worker loads (jobs/steals): {}", loads.join(" "));
    println!();

    let model = EnergyModel::default();
    let points = config_points(&summary.outcomes);
    print!("{}", frontier_table(&points, &model));

    type Serializer = fn(&[sigcomp_explore::JobOutcome], &EnergyModel) -> String;
    for (path, serialize, what) in [
        (args.csv.as_deref(), to_csv as Serializer, "CSV"),
        (args.json.as_deref(), to_json as Serializer, "JSON"),
    ] {
        if let Some(path) = path {
            if let Err(e) = std::fs::write(path, serialize(&summary.outcomes, &model)) {
                eprintln!("sweep: cannot write {what} to {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {what} to {path}");
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut size = WorkloadSize::Default;
    let mut commands: Vec<String> = Vec::new();
    let mut sweep_args = SweepArgs::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--size" => {
                let Some(value) = args.next().as_deref().and_then(parse_size) else {
                    return usage();
                };
                size = value;
            }
            "--workers" => {
                let Some(value) = args
                    .next()
                    .as_deref()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                else {
                    return usage();
                };
                sweep_args.workers = Some(value);
            }
            "--schemes" => {
                let Some(value) = args
                    .next()
                    .as_deref()
                    .and_then(|v| parse_list(v, ExtScheme::parse))
                else {
                    return usage();
                };
                sweep_args.schemes = Some(value);
            }
            "--orgs" => {
                let Some(raw) = args.next() else {
                    return usage();
                };
                if raw == "all" {
                    sweep_args.orgs = Some(OrgKind::ALL.to_vec());
                } else {
                    let Some(value) = parse_list(&raw, OrgKind::parse) else {
                        return usage();
                    };
                    sweep_args.orgs = Some(value);
                }
            }
            "--mems" => {
                let Some(value) = args
                    .next()
                    .as_deref()
                    .and_then(|v| parse_list(v, MemProfile::parse))
                else {
                    return usage();
                };
                sweep_args.mems = Some(value);
            }
            "--cache" => {
                let Some(value) = args.next() else {
                    return usage();
                };
                sweep_args.cache_dir = Some(value);
            }
            "--no-cache" => sweep_args.no_cache = true,
            "--csv" => {
                let Some(value) = args.next() else {
                    return usage();
                };
                sweep_args.csv = Some(value);
            }
            "--json" => {
                let Some(value) = args.next() else {
                    return usage();
                };
                sweep_args.json = Some(value);
            }
            "--help" | "-h" => {
                let _ = usage();
                return ExitCode::SUCCESS;
            }
            other => commands.push(other.to_owned()),
        }
    }
    if commands.is_empty() {
        commands.push("all".to_owned());
    }

    // The activity studies feed several tables; run them lazily and only once.
    let mut byte_rows = None;
    let mut half_rows = None;
    let mut byte_activity = |size: WorkloadSize| {
        byte_rows
            .get_or_insert_with(|| activity_study(size, &AnalyzerConfig::paper_byte()))
            .clone()
    };
    let mut half_activity = |size: WorkloadSize| {
        half_rows
            .get_or_insert_with(|| activity_study(size, &AnalyzerConfig::paper_halfword()))
            .clone()
    };

    for command in &commands {
        let expanded: Vec<&str> = if command == "all" {
            vec![
                "table1",
                "table2",
                "table3",
                "table4",
                "table5",
                "table6",
                "fig4",
                "fig6",
                "fig8",
                "fig10",
                "bottleneck",
            ]
        } else {
            vec![command.as_str()]
        };
        for cmd in expanded {
            match cmd {
                "table1" => print!("{}", table1(&merged_stats(&byte_activity(size)))),
                "table2" => print!("{}", table2()),
                "table3" => print!("{}", table3(&merged_stats(&byte_activity(size)))),
                "table4" => print!("{}", table4()),
                "table5" => print!(
                    "{}",
                    activity_table(&byte_activity(size), ExtScheme::ThreeBit)
                ),
                "table6" => print!(
                    "{}",
                    activity_table(&half_activity(size), ExtScheme::Halfword)
                ),
                "fig4" => {
                    let kinds = figure_orgs(4);
                    print!(
                        "{}",
                        figure(
                            "Figure 4: CPI of the byte-serial and halfword-serial pipelines",
                            &cpi_study(size, &kinds),
                            &kinds
                        )
                    );
                }
                "fig6" => {
                    let kinds = figure_orgs(6);
                    print!(
                        "{}",
                        figure(
                            "Figure 6: CPI of the byte semi-parallel pipeline",
                            &cpi_study(size, &kinds),
                            &kinds
                        )
                    );
                }
                "fig8" => {
                    let kinds = figure_orgs(8);
                    print!(
                        "{}",
                        figure(
                            "Figure 8: CPI of the byte-parallel skewed pipeline",
                            &cpi_study(size, &kinds),
                            &kinds
                        )
                    );
                }
                "fig10" => {
                    let kinds = figure_orgs(10);
                    print!(
                        "{}",
                        figure(
                            "Figure 10: CPI of the byte-parallel compressed and skewed+bypass pipelines",
                            &cpi_study(size, &kinds),
                            &kinds
                        )
                    );
                }
                "bottleneck" => print!("{}", bottleneck(size)),
                "sweep" => {
                    let code = run_sweep_command(size, &sweep_args);
                    if code != ExitCode::SUCCESS {
                        return code;
                    }
                }
                _ => return usage(),
            }
            println!();
        }
    }
    ExitCode::SUCCESS
}
