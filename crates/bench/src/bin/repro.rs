//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--size tiny|default|large] [table1|table2|table3|table4|table5|table6|
//!        fig4|fig6|fig8|fig10|bottleneck|all]
//! ```
//!
//! With no subcommand (or `all`) every artefact is printed in paper order.

use sigcomp::analyzer::AnalyzerConfig;
use sigcomp::ExtScheme;
use sigcomp_bench::{
    activity_study, activity_table, bottleneck, cpi_study, figure, figure_orgs, merged_stats,
    table1, table2, table3, table4,
};
use sigcomp_workloads::WorkloadSize;
use std::process::ExitCode;

fn parse_size(value: &str) -> Option<WorkloadSize> {
    match value {
        "tiny" => Some(WorkloadSize::Tiny),
        "default" => Some(WorkloadSize::Default),
        "large" => Some(WorkloadSize::Large),
        _ => None,
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [--size tiny|default|large] \
         [table1|table2|table3|table4|table5|table6|fig4|fig6|fig8|fig10|bottleneck|all]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut size = WorkloadSize::Default;
    let mut commands: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--size" => {
                let Some(value) = args.next().as_deref().and_then(parse_size) else {
                    return usage();
                };
                size = value;
            }
            "--help" | "-h" => {
                let _ = usage();
                return ExitCode::SUCCESS;
            }
            other => commands.push(other.to_owned()),
        }
    }
    if commands.is_empty() {
        commands.push("all".to_owned());
    }

    // The activity studies feed several tables; run them lazily and only once.
    let mut byte_rows = None;
    let mut half_rows = None;
    let mut byte_activity = |size: WorkloadSize| {
        byte_rows
            .get_or_insert_with(|| activity_study(size, &AnalyzerConfig::paper_byte()))
            .clone()
    };
    let mut half_activity = |size: WorkloadSize| {
        half_rows
            .get_or_insert_with(|| activity_study(size, &AnalyzerConfig::paper_halfword()))
            .clone()
    };

    for command in &commands {
        let expanded: Vec<&str> = if command == "all" {
            vec![
                "table1",
                "table2",
                "table3",
                "table4",
                "table5",
                "table6",
                "fig4",
                "fig6",
                "fig8",
                "fig10",
                "bottleneck",
            ]
        } else {
            vec![command.as_str()]
        };
        for cmd in expanded {
            match cmd {
                "table1" => print!("{}", table1(&merged_stats(&byte_activity(size)))),
                "table2" => print!("{}", table2()),
                "table3" => print!("{}", table3(&merged_stats(&byte_activity(size)))),
                "table4" => print!("{}", table4()),
                "table5" => print!(
                    "{}",
                    activity_table(&byte_activity(size), ExtScheme::ThreeBit)
                ),
                "table6" => print!(
                    "{}",
                    activity_table(&half_activity(size), ExtScheme::Halfword)
                ),
                "fig4" => {
                    let kinds = figure_orgs(4);
                    print!(
                        "{}",
                        figure(
                            "Figure 4: CPI of the byte-serial and halfword-serial pipelines",
                            &cpi_study(size, &kinds),
                            &kinds
                        )
                    );
                }
                "fig6" => {
                    let kinds = figure_orgs(6);
                    print!(
                        "{}",
                        figure(
                            "Figure 6: CPI of the byte semi-parallel pipeline",
                            &cpi_study(size, &kinds),
                            &kinds
                        )
                    );
                }
                "fig8" => {
                    let kinds = figure_orgs(8);
                    print!(
                        "{}",
                        figure(
                            "Figure 8: CPI of the byte-parallel skewed pipeline",
                            &cpi_study(size, &kinds),
                            &kinds
                        )
                    );
                }
                "fig10" => {
                    let kinds = figure_orgs(10);
                    print!(
                        "{}",
                        figure(
                            "Figure 10: CPI of the byte-parallel compressed and skewed+bypass pipelines",
                            &cpi_study(size, &kinds),
                            &kinds
                        )
                    );
                }
                "bottleneck" => print!("{}", bottleneck(size)),
                _ => return usage(),
            }
            println!();
        }
    }
    ExitCode::SUCCESS
}
