//! CLI contract tests for the `repro` binary: malformed invocations must
//! print a named error plus the usage text and exit non-zero — never panic —
//! and `--help` must exit zero.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro runs")
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = repro(&["--help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("usage: repro"));
    assert!(text.contains("serve options:"));
    assert!(text.contains("--max-batch"));
}

#[test]
fn unknown_options_fail_with_a_named_error() {
    let out = repro(&["--frobnicate"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown option '--frobnicate'"), "{err}");
    assert!(err.contains("usage: repro"), "{err}");
}

#[test]
fn unknown_commands_fail_with_a_named_error() {
    let out = repro(&["table99"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown command 'table99'"), "{err}");
}

#[test]
fn malformed_values_name_the_flag_and_the_value() {
    for (args, needle) in [
        (
            &["--workers", "zero"][..],
            "invalid value 'zero' for --workers",
        ),
        (&["--workers", "0"], "invalid value '0' for --workers"),
        (&["--max-batch", "-3"], "invalid value '-3' for --max-batch"),
        (&["--size", "huge"], "invalid value 'huge' for --size"),
        (
            &["--schemes", "3bit,warp"],
            "invalid value '3bit,warp' for --schemes",
        ),
        (
            &["--orgs", "warp-drive"],
            "invalid value 'warp-drive' for --orgs",
        ),
        (&["--mems", "ram"], "invalid value 'ram' for --mems"),
    ] {
        let out = repro(args);
        assert!(!out.status.success(), "{args:?} must fail");
        let err = stderr(&out);
        assert!(err.contains(needle), "{args:?}: {err}");
        assert!(err.contains("usage: repro"), "{args:?}: {err}");
    }
}

#[test]
fn options_missing_their_value_are_reported() {
    for flag in [
        "--size",
        "--workers",
        "--schemes",
        "--cache",
        "--addr",
        "--max-batch",
    ] {
        let out = repro(&[flag]);
        assert!(!out.status.success(), "{flag} must fail");
        let err = stderr(&out);
        assert!(
            err.contains(&format!("{flag} expects a value")),
            "{flag}: {err}"
        );
    }
}

#[test]
fn subcommand_flags_without_their_subcommand_are_rejected() {
    for (args, needle) in [
        (
            &["--csv", "out.csv", "table1"][..],
            "--csv only applies to the sweep subcommand",
        ),
        (
            &["serve", "--schemes", "3bit"],
            "--schemes only applies to the sweep subcommand",
        ),
        (
            &["sweep", "--addr", "127.0.0.1:1"],
            "--addr only applies to the serve subcommand",
        ),
        (
            &["--size", "tiny", "table1", "--workers", "2"],
            "--workers/--cache/--no-cache only apply to the sweep and serve subcommands",
        ),
    ] {
        let out = repro(args);
        assert!(!out.status.success(), "{args:?} must fail");
        let err = stderr(&out);
        assert!(err.contains(needle), "{args:?}: {err}");
    }
}

#[test]
fn empty_sweeps_fail_cleanly() {
    let out = repro(&["--size", "tiny", "sweep", "--no-cache", "--orgs", ""]);
    assert!(!out.status.success());
    // "" parses as an unknown organization → named error, not a panic.
    assert!(stderr(&out).contains("invalid value '' for --orgs"));
}

#[test]
fn serve_fails_cleanly_on_an_unbindable_address() {
    let out = repro(&["serve", "--addr", "256.0.0.1:1", "--no-cache"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cannot bind listener"));
}
