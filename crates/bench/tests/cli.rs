//! CLI contract tests for the `repro` binary: malformed invocations must
//! print a named error plus the usage text and exit non-zero — never panic —
//! and `--help` must exit zero.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro runs")
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = repro(&["--help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("usage: repro"));
    assert!(text.contains("serve options:"));
    assert!(text.contains("--max-batch"));
}

#[test]
fn unknown_options_fail_with_a_named_error() {
    let out = repro(&["--frobnicate"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown option '--frobnicate'"), "{err}");
    assert!(err.contains("usage: repro"), "{err}");
}

#[test]
fn unknown_commands_fail_with_a_named_error() {
    let out = repro(&["table99"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown command 'table99'"), "{err}");
}

#[test]
fn malformed_values_name_the_flag_and_the_value() {
    for (args, needle) in [
        (
            &["--workers", "zero"][..],
            "invalid value 'zero' for --workers",
        ),
        (&["--workers", "0"], "invalid value '0' for --workers"),
        (&["--max-batch", "-3"], "invalid value '-3' for --max-batch"),
        (&["--size", "huge"], "invalid value 'huge' for --size"),
        (
            &["--schemes", "3bit,warp"],
            "invalid value '3bit,warp' for --schemes",
        ),
        (
            &["--orgs", "warp-drive"],
            "invalid value 'warp-drive' for --orgs",
        ),
        (&["--mems", "ram"], "invalid value 'ram' for --mems"),
        (
            &["--energy-model", "paper-180nm,3nm"],
            "invalid value 'paper-180nm,3nm' for --energy-model",
        ),
    ] {
        let out = repro(args);
        assert!(!out.status.success(), "{args:?} must fail");
        let err = stderr(&out);
        assert!(err.contains(needle), "{args:?}: {err}");
        assert!(err.contains("usage: repro"), "{args:?}: {err}");
    }
}

#[test]
fn options_missing_their_value_are_reported() {
    for flag in [
        "--size",
        "--workers",
        "--schemes",
        "--cache",
        "--addr",
        "--max-batch",
    ] {
        let out = repro(&[flag]);
        assert!(!out.status.success(), "{flag} must fail");
        let err = stderr(&out);
        assert!(
            err.contains(&format!("{flag} expects a value")),
            "{flag}: {err}"
        );
    }
}

#[test]
fn subcommand_flags_without_their_subcommand_are_rejected() {
    for (args, needle) in [
        (
            &["--csv", "out.csv", "table1"][..],
            "--csv only applies to the sweep and fleet sweep subcommands",
        ),
        (
            &["serve", "--schemes", "3bit"],
            "--schemes only applies to the sweep, fleet sweep and energy subcommands",
        ),
        (
            &["sweep", "--addr", "127.0.0.1:1"],
            "--addr only applies to the serve and fleet serve subcommands",
        ),
        (
            &["energy", "--energy-model", "modern-7nm"],
            "--energy-model only applies to the sweep and fleet sweep subcommands",
        ),
        (
            &["--size", "tiny", "table1", "--workers", "2"],
            "--workers/--cache/--no-cache only apply to the sweep, energy and serve subcommands",
        ),
    ] {
        let out = repro(args);
        assert!(!out.status.success(), "{args:?} must fail");
        let err = stderr(&out);
        assert!(err.contains(needle), "{args:?}: {err}");
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn trace_without_a_subcommand_fails_with_a_named_error() {
    let out = repro(&["trace"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("trace expects a subcommand"), "{err}");
    assert!(err.contains("usage: repro"), "{err}");

    let out = repro(&["trace", "frobnicate"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("unknown trace subcommand 'frobnicate'"),
        "{}",
        stderr(&out)
    );

    // A misplaced `trace` gets a pointed error, not a misleading
    // "unknown option" from the global flag loop.
    let out = repro(&[
        "--size",
        "tiny",
        "trace",
        "record",
        "rawcaudio",
        "--out",
        "x",
    ]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("'trace' must be the first argument"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn trace_record_argument_errors_are_named() {
    for (args, needle) in [
        (
            &["trace", "record", "rawcaudio"][..],
            "trace record requires --out",
        ),
        (
            &["trace", "record", "--out", "x.sctrace"],
            "trace record expects a workload name or --all",
        ),
        (
            &["trace", "record", "a", "b", "--out", "x.sctrace"],
            "exactly one workload",
        ),
        (
            &["trace", "record", "--all", "rawcaudio", "--out", "x"],
            "mutually exclusive",
        ),
        (
            &["trace", "record", "rawcaudio", "--size"],
            "--size expects a value",
        ),
        (
            &[
                "trace",
                "record",
                "rawcaudio",
                "--size",
                "huge",
                "--out",
                "x",
            ],
            "invalid value 'huge' for --size",
        ),
    ] {
        let out = repro(args);
        assert!(!out.status.success(), "{args:?} must fail");
        assert!(stderr(&out).contains(needle), "{args:?}: {}", stderr(&out));
    }
}

#[test]
fn trace_replay_and_stat_fail_cleanly_on_missing_and_corrupt_files() {
    let dir = temp_dir("corrupt");
    let missing = dir.join("nope.sctrace");
    for verb in ["replay", "stat"] {
        let out = repro(&["trace", verb, missing.to_str().unwrap()]);
        assert!(!out.status.success(), "{verb} on a missing file must fail");
        let err = stderr(&out);
        assert!(err.contains("cannot read"), "{verb}: {err}");
    }

    let garbage = dir.join("garbage.sctrace");
    std::fs::write(&garbage, "not a trace at all\n").unwrap();
    for verb in ["replay", "stat"] {
        let out = repro(&["trace", verb, garbage.to_str().unwrap()]);
        assert!(!out.status.success(), "{verb} on garbage must fail");
        let err = stderr(&out);
        assert!(err.contains("bad magic"), "{verb}: {err}");
    }

    // A structurally-valid header with a corrupted payload must also fail
    // (the digest guards it), not silently replay wrong data.
    let recorded = dir.join("ok.sctrace");
    let out = repro(&[
        "trace",
        "record",
        "rawcaudio",
        "--size",
        "tiny",
        "--out",
        recorded.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let mut bytes = std::fs::read(&recorded).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    let tampered = dir.join("tampered.sctrace");
    std::fs::write(&tampered, bytes).unwrap();
    let out = repro(&["trace", "stat", tampered.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("digest"), "{}", stderr(&out));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_record_stat_replay_round_trip() {
    let dir = temp_dir("roundtrip");
    let path = dir.join("rawcaudio.sctrace");
    let out = repro(&[
        "trace",
        "record",
        "rawcaudio",
        "--size",
        "tiny",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("recorded rawcaudio (tiny)"), "{text}");

    let out = repro(&["trace", "stat", path.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("records"), "{text}");
    assert!(text.contains("payload verified"), "{text}");

    let out = repro(&[
        "trace",
        "replay",
        path.to_str().unwrap(),
        "--schemes",
        "3bit",
        "--orgs",
        "baseline32,byte-serial",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("replaying rawcaudio"), "{text}");
    assert!(
        text.contains("rawcaudio/byte-serial/3bit/paper/trace"),
        "{text}"
    );

    let out = repro(&["trace", "record", "unknown-kernel", "--out", "x.sctrace"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("unknown workload 'unknown-kernel'"),
        "{}",
        stderr(&out)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_traces_flag_is_sweep_only_and_fails_cleanly_on_missing_files() {
    let out = repro(&["table1", "--traces", "x.sctrace"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("--traces only applies to the sweep and fleet sweep subcommands"),
        "{}",
        stderr(&out)
    );

    let out = repro(&[
        "sweep",
        "--no-cache",
        "--traces",
        "definitely-missing.sctrace",
    ]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(
        err.contains("cannot read trace definitely-missing.sctrace"),
        "{err}"
    );
}

#[test]
fn energy_compares_every_process_node_preset() {
    let out = repro(&[
        "--size",
        "tiny",
        "energy",
        "--no-cache",
        "--workers",
        "2",
        "--schemes",
        "3bit",
        "--orgs",
        "baseline32,byte-serial,compressed",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        text.contains("Total-energy saving by process node"),
        "{text}"
    );
    for preset in ["paper-180nm", "generic-45nm", "modern-7nm"] {
        assert!(text.contains(&format!("frontier under {preset}")), "{text}");
    }
    assert!(text.contains("3bit/compressed/paper/tiny"), "{text}");
}

#[test]
fn sweep_energy_model_flag_prints_one_frontier_per_preset() {
    let out = repro(&[
        "--size",
        "tiny",
        "sweep",
        "--no-cache",
        "--workers",
        "2",
        "--schemes",
        "3bit",
        "--orgs",
        "baseline32,byte-serial",
        "--energy-model",
        "paper-180nm,modern-7nm",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("energy model: paper-180nm"), "{text}");
    assert!(text.contains("energy model: modern-7nm"), "{text}");
    // The dynamic-only preset prints the paper-era columns, the leaky one
    // the extended set.
    assert!(text.contains("energy saving"), "{text}");
    assert!(text.contains("total saving"), "{text}");
    assert!(text.contains("leakage saving"), "{text}");
}

#[test]
fn empty_sweeps_fail_cleanly() {
    let out = repro(&["--size", "tiny", "sweep", "--no-cache", "--orgs", ""]);
    assert!(!out.status.success());
    // "" parses as an unknown organization → named error, not a panic.
    assert!(stderr(&out).contains("invalid value '' for --orgs"));
}

#[test]
fn serve_fails_cleanly_on_an_unbindable_address() {
    let out = repro(&["serve", "--addr", "256.0.0.1:1", "--no-cache"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cannot bind listener"));
}

#[test]
fn shards_flag_is_validated_and_sweep_only() {
    for (args, needle) in [
        (
            &["--size", "tiny", "sweep", "--shards", "0"][..],
            "invalid value '0' for --shards",
        ),
        (
            &["--size", "tiny", "sweep", "--shards", "three"],
            "invalid value 'three' for --shards",
        ),
        (&["sweep", "--shards"], "--shards expects a value"),
        (
            &["table1", "--shards", "2"],
            "--shards only applies to the sweep subcommand",
        ),
        (
            &["--size", "tiny", "sweep", "--no-cache", "--shards", "2"],
            "--shards requires the result cache",
        ),
    ] {
        let out = repro(args);
        assert!(!out.status.success(), "{args:?} must fail");
        let err = stderr(&out);
        assert!(err.contains(needle), "{args:?}: {err}");
    }
}

#[test]
fn worker_argument_errors_are_named() {
    let dir = temp_dir("worker-args");
    let cache = dir.join("cache");
    let cache = cache.to_str().unwrap();
    for (args, needle) in [
        (
            &["worker", "--cache", cache][..],
            "worker requires --shard INDEX/COUNT",
        ),
        (&["worker", "--shard", "0/2"], "worker requires --cache DIR"),
        (&["worker", "--shard"], "--shard expects a value"),
        (
            &["worker", "--shard", "3/2", "--cache", cache],
            "invalid value '3/2' for --shard",
        ),
        (
            &["worker", "--shard", "2/2", "--cache", cache],
            "the shard index must be below the shard count",
        ),
        (
            &["worker", "--shard", "0/0", "--cache", cache],
            "the shard count must be positive",
        ),
        (
            &["worker", "--shard", "zero/two", "--cache", cache],
            "is not an integer",
        ),
        (
            &["worker", "--shard", "0of2", "--cache", cache],
            "expected INDEX/COUNT",
        ),
        (
            &["worker", "--shard", "0/1", "--cache", cache, "--frobnicate"],
            "unknown worker option '--frobnicate'",
        ),
        (
            &["--size", "tiny", "worker", "--shard", "0/1"],
            "'worker' must be the first argument",
        ),
    ] {
        let out = repro(args);
        assert!(!out.status.success(), "{args:?} must fail");
        let err = stderr(&out);
        assert!(err.contains(needle), "{args:?}: {err}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_rejects_malformed_job_lines_from_stdin() {
    use std::io::Write as _;
    let dir = temp_dir("worker-stdin");
    let cache = dir.join("cache");
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "worker",
            "--shard",
            "0/1",
            "--cache",
            cache.to_str().unwrap(),
        ])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("worker spawns");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"kernel rawcaudio tiny paper 3bit byte-serial\ngarbage line\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success(), "malformed job lines must fail");
    let err = stderr(&out);
    assert!(err.contains("bad job line 'garbage line'"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dead_and_unspawnable_worker_children_produce_named_errors() {
    // A worker that dies (here: /bin/false via the REPRO_WORKER launcher
    // override) must surface as a named failure with a failing exit code,
    // never a hang or a partial merge.
    let dir = temp_dir("dead-worker");
    let cache = dir.join("cache");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--size",
            "tiny",
            "sweep",
            "--shards",
            "2",
            "--schemes",
            "3bit",
            "--orgs",
            "baseline32",
            "--cache",
            cache.to_str().unwrap(),
        ])
        .env("REPRO_WORKER", "/bin/false")
        .output()
        .expect("repro runs");
    assert!(
        !out.status.success(),
        "a dead worker child must fail the sweep"
    );
    let err = stderr(&out);
    assert!(err.contains("worker shard 0/2 failed"), "{err}");

    // And a worker binary that cannot even be spawned names the shard too.
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--size",
            "tiny",
            "sweep",
            "--shards",
            "2",
            "--schemes",
            "3bit",
            "--orgs",
            "baseline32",
            "--cache",
            cache.to_str().unwrap(),
        ])
        .env("REPRO_WORKER", "/definitely/not/a/binary")
        .output()
        .expect("repro runs");
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("cannot spawn worker shard 0/2"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_sweeps_are_byte_identical_to_single_process_runs() {
    let dir = temp_dir("sharded-equiv");
    let cache = dir.join("cache");
    let single_csv = dir.join("single.csv");
    let single_json = dir.join("single.json");
    let sharded_csv = dir.join("sharded.csv");
    let sharded_json = dir.join("sharded.json");

    let base = [
        "--size",
        "tiny",
        "sweep",
        "--schemes",
        "3bit",
        "--orgs",
        "baseline32,byte-serial",
    ];
    let mut single = base.to_vec();
    single.extend(["--no-cache", "--csv", single_csv.to_str().unwrap()]);
    single.extend(["--json", single_json.to_str().unwrap()]);
    let out = repro(&single);
    assert!(out.status.success(), "{}", stderr(&out));

    let mut sharded = base.to_vec();
    sharded.extend(["--shards", "3", "--cache", cache.to_str().unwrap()]);
    sharded.extend(["--csv", sharded_csv.to_str().unwrap()]);
    sharded.extend(["--json", sharded_json.to_str().unwrap()]);
    let out = repro(&sharded);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("ran on 3 worker processes"), "{text}");

    // The merge invariant: for any shard count, merged exports are
    // byte-identical to the single-process sweep.
    assert_eq!(
        std::fs::read(&single_csv).unwrap(),
        std::fs::read(&sharded_csv).unwrap(),
        "sharded CSV must be byte-identical"
    );
    assert_eq!(
        std::fs::read(&single_json).unwrap(),
        std::fs::read(&sharded_json).unwrap(),
        "sharded JSON must be byte-identical"
    );

    // A warm rerun with a different shard count answers everything from the
    // shared cache and still exports the same bytes.
    let rerun_csv = dir.join("rerun.csv");
    let mut rerun = base.to_vec();
    rerun.extend(["--shards", "2", "--cache", cache.to_str().unwrap()]);
    rerun.extend(["--csv", rerun_csv.to_str().unwrap()]);
    let out = repro(&rerun);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("0 simulated, 22 from cache"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_backend_flag_is_validated() {
    for (args, needle) in [
        (
            &["serve", "--backend", "warp"][..],
            "invalid value 'warp' for --backend",
        ),
        (
            &["serve", "--backend", "subprocess:0"],
            "invalid value 'subprocess:0' for --backend",
        ),
        (
            &["serve", "--no-cache", "--backend", "subprocess:2"],
            "--backend subprocess requires the result cache",
        ),
        (
            &["table1", "--backend", "local"],
            "--backend only applies to the serve and fleet serve subcommands",
        ),
        (
            &["table1", "--memo-cap", "10"],
            "--memo-cap only applies to the serve and fleet serve subcommands",
        ),
        (
            &["serve", "--memo-cap", "0"],
            "invalid value '0' for --memo-cap",
        ),
        (
            &["serve", "--ticket-cap", "-1"],
            "invalid value '-1' for --ticket-cap",
        ),
        (
            &["serve", "--max-conns", "0"],
            "invalid value '0' for --max-conns",
        ),
        (
            &["serve", "--read-deadline-ms", "never"],
            "invalid value 'never' for --read-deadline-ms",
        ),
        (
            &["serve", "--keep-alive", "maybe"],
            "invalid value 'maybe' for --keep-alive (expected on or off)",
        ),
        (
            &["table1", "--max-conns", "64"],
            "--max-conns only applies to the serve and fleet serve subcommands",
        ),
        (
            &["table1", "--read-deadline-ms", "500"],
            "--read-deadline-ms only applies to the serve and fleet serve subcommands",
        ),
        (
            &["table1", "--keep-alive", "on"],
            "--keep-alive only applies to the serve and fleet serve subcommands",
        ),
    ] {
        let out = repro(args);
        assert!(!out.status.success(), "{args:?} must fail");
        let err = stderr(&out);
        assert!(err.contains(needle), "{args:?}: {err}");
    }
}

#[test]
fn serve_on_the_subprocess_backend_answers_and_counts_dispatch() {
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;

    let dir = temp_dir("serve-subprocess");
    let cache = dir.join("cache");
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--backend",
            "subprocess:2",
            "--cache",
            cache.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("serve spawns");

    // The banner names the bound address (port 0 picks a free one).
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let addr = loop {
        let mut line = String::new();
        if stdout.read_line(&mut line).unwrap() == 0 {
            let _ = child.kill();
            panic!("serve exited before printing its address");
        }
        if let Some(rest) = line.trim().strip_prefix("serving on http://") {
            break rest.to_owned();
        }
    };

    let request = |method: &str, path: &str, body: &str| -> (u16, String) {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes()).expect("send");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        let status = raw.split(' ').nth(1).and_then(|s| s.parse().ok()).unwrap();
        let payload = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_owned())
            .unwrap_or_default();
        (status, payload)
    };

    // A simulation served through sharded worker subprocesses...
    let (status, body) = request(
        "POST",
        "/simulate",
        "{\"workload\": \"rawcaudio\", \"size\": \"tiny\"}",
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"cycles\": "), "{body}");

    // ...is what the dispatch counters must attribute to the subprocess
    // backend.
    let (status, metrics) = request("GET", "/metrics", "");
    assert_eq!(status, 200, "{metrics}");
    assert!(
        metrics.contains("\"dispatch\": {\"local\": 0, \"subprocess\": 1, \"fleet\": 0}"),
        "{metrics}"
    );

    let _ = child.kill();
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_obs_totals_match_the_single_process_run() {
    // The merged observability registry of a sharded sweep must report the
    // same replay/cache counters as the single-process run — shard
    // attribution may differ, the totals may not.
    let dir = temp_dir("obs-totals");
    let base = [
        "--size",
        "tiny",
        "sweep",
        "--schemes",
        "3bit",
        "--orgs",
        "baseline32,byte-serial",
    ];
    let obs_line = |stdout: &[u8], tag: &str| -> String {
        let text = String::from_utf8_lossy(stdout).into_owned();
        text.lines()
            .find(|l| l.starts_with("obs totals: "))
            .unwrap_or_else(|| panic!("{tag}: no obs totals line in:\n{text}"))
            .to_owned()
    };
    let cache_line = |stdout: &[u8]| -> Option<String> {
        String::from_utf8_lossy(stdout)
            .lines()
            .find(|l| l.starts_with("cache: "))
            .map(str::to_owned)
    };

    let single_cache = dir.join("single-cache");
    let mut single = base.to_vec();
    single.extend(["--cache", single_cache.to_str().unwrap()]);
    let out = repro(&single);
    assert!(out.status.success(), "{}", stderr(&out));
    let single_totals = obs_line(&out.stdout, "single");
    assert!(
        single_totals.contains("replay.jobs_simulated=22"),
        "{single_totals}"
    );
    assert!(
        single_totals.contains("explore.cache.store=22"),
        "{single_totals}"
    );
    let single_cache_stats = cache_line(&out.stdout).expect("single run prints cache stats");

    let sharded_cache = dir.join("sharded-cache");
    let obs_log = dir.join("events.jsonl");
    let mut sharded = base.to_vec();
    sharded.extend(["--shards", "3", "--cache", sharded_cache.to_str().unwrap()]);
    sharded.extend(["--obs-log", obs_log.to_str().unwrap()]);
    let out = repro(&sharded);
    assert!(out.status.success(), "{}", stderr(&out));
    assert_eq!(single_totals, obs_line(&out.stdout, "sharded"));
    assert_eq!(Some(single_cache_stats), cache_line(&out.stdout));

    // --obs-log on a sharded sweep streams events per process: the parent
    // file plus one `.shard-<i>` file per worker, each led by the header.
    for path in [
        obs_log.clone(),
        obs_log.with_extension("jsonl.shard-0"),
        obs_log.with_extension("jsonl.shard-2"),
    ] {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            text.starts_with("{\"obs_log\": \"sigcomp-obs v1\"}"),
            "{}: {text}",
            path.display()
        );
    }
    let shard0 = std::fs::read_to_string(obs_log.with_extension("jsonl.shard-0")).unwrap();
    assert!(shard0.contains("\"span\": \"replay.job\""), "{shard0}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_quick_emits_a_schema_valid_report_and_check_validates_it() {
    let dir = temp_dir("bench-quick");
    let report = dir.join("bench.json");
    let trajectory = dir.join("trajectory.json");
    let out = repro(&[
        "bench",
        "--quick",
        "--label",
        "smoke",
        "--out",
        report.to_str().unwrap(),
        "--trajectory",
        trajectory.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("bench: label smoke (quick)"), "{text}");
    assert!(text.contains("replay:"), "{text}");
    assert!(text.contains("frontier:"), "{text}");
    assert!(text.contains("appended to"), "{text}");
    let traj = std::fs::read_to_string(&trajectory).expect("trajectory written");
    assert!(
        traj.contains("\"schema\": \"sigcomp-bench-trajectory v1\""),
        "{traj}"
    );
    assert!(traj.contains("{\"label\": \"smoke\""), "{traj}");

    let json = std::fs::read_to_string(&report).expect("report written");
    assert!(json.contains("\"schema\": \"sigcomp-bench v1\""), "{json}");
    assert!(json.contains("\"label\": \"smoke\""), "{json}");
    sigcomp_bench::perf::validate(&json).expect("report validates");

    // `bench --check` accepts the emitted report...
    let out = repro(&["bench", "--check", report.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("valid sigcomp-bench v1 report"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // ...and names the violation on a broken one.
    let broken = dir.join("broken.json");
    std::fs::write(&broken, json.replace("\"quick\": true", "\"quick\": 3")).unwrap();
    let out = repro(&["bench", "--check", broken.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("\"quick\" is not a boolean"),
        "{}",
        stderr(&out)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_and_obs_flags_are_scoped_to_their_subcommands() {
    for (args, needle) in [
        (
            &["table1", "--quick"][..],
            "--quick only applies to the bench subcommand",
        ),
        (
            &["table1", "--label", "x"],
            "--label only applies to the bench subcommand",
        ),
        (
            &["sweep", "--check", "x.json"],
            "--check only applies to the bench subcommand",
        ),
        (
            &["table1", "--obs-log", "x.jsonl"],
            "--obs-log only applies to the sweep, serve and bench subcommands",
        ),
        (&["bench", "--label"], "--label expects a value"),
    ] {
        let out = repro(args);
        assert!(!out.status.success(), "{args:?} must fail");
        let err = stderr(&out);
        assert!(err.contains(needle), "{args:?}: {err}");
    }
}

#[test]
fn analyze_prints_the_static_width_picture_and_exports() {
    let dir = temp_dir("analyze");
    let csv = dir.join("widths.csv");
    let json = dir.join("widths.json");
    let out = repro(&[
        "analyze",
        "rawcaudio",
        "--size",
        "tiny",
        "--csv",
        csv.to_str().unwrap(),
        "--json",
        json.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("static width analysis"), "{text}");
    assert!(text.contains("Static width bounds"), "{text}");
    assert!(text.contains("predicted saving"), "{text}");
    let csv_text = std::fs::read_to_string(&csv).unwrap();
    assert!(
        csv_text.starts_with("op,count,mean_operand_bytes,result_bound\n"),
        "{csv_text}"
    );
    assert!(csv_text.lines().last().unwrap().starts_with("total,"));
    let json_text = std::fs::read_to_string(&json).unwrap();
    assert!(json_text.contains("\"mean_bound_bytes\""), "{json_text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn analyze_verifies_trace_files_against_the_reconstructed_bounds() {
    let dir = temp_dir("analyze-trace");
    let path = dir.join("rawcaudio.sctrace");
    let out = repro(&[
        "trace",
        "record",
        "rawcaudio",
        "--size",
        "tiny",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    let out = repro(&["analyze", path.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("program reconstructed from"), "{text}");
    assert!(
        text.contains("against the static bounds"),
        "every record must be differentially verified: {text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn analyze_argument_errors_are_named_and_fail() {
    let out = repro(&["analyze"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("analyze expects a workload name"),
        "{}",
        stderr(&out)
    );

    let out = repro(&["analyze", "no-such-workload"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown workload 'no-such-workload'"), "{err}");
    assert!(err.contains("rawcaudio"), "must list the suite: {err}");

    let out = repro(&["analyze", "definitely-missing.sctrace"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("cannot read trace definitely-missing.sctrace"),
        "{}",
        stderr(&out)
    );

    let dir = temp_dir("analyze-garbage");
    let garbage = dir.join("garbage.sctrace");
    std::fs::write(&garbage, "not a trace at all\n").unwrap();
    let out = repro(&["analyze", garbage.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("bad magic"), "{}", stderr(&out));

    let out = repro(&["analyze", "rawcaudio", "--frobnicate"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("unknown analyze option '--frobnicate'"),
        "{}",
        stderr(&out)
    );

    let out = repro(&["table1", "analyze"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("'analyze' must be the first argument"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn trace_stat_prints_the_shared_significance_histogram() {
    let dir = temp_dir("stat-histogram");
    let path = dir.join("rawcaudio.sctrace");
    let out = repro(&[
        "trace",
        "record",
        "rawcaudio",
        "--size",
        "tiny",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    let out = repro(&["trace", "stat", path.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("significant-byte patterns"), "{text}");
    assert!(text.contains("cumulative"), "{text}");
    assert!(text.contains("payload verified"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn static_prune_flag_is_validated_and_sweep_only() {
    let out = repro(&["table1", "--static-prune", "50"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("--static-prune only applies to the sweep and fleet sweep"),
        "{}",
        stderr(&out)
    );

    for bad in ["lots", "-3", "NaN"] {
        let out = repro(&["sweep", "--static-prune", bad]);
        assert!(!out.status.success(), "--static-prune {bad} must fail");
        assert!(
            stderr(&out).contains(&format!("invalid value '{bad}' for --static-prune")),
            "{}",
            stderr(&out)
        );
    }
}

#[test]
fn static_prune_preserves_the_merge_invariant() {
    let dir = temp_dir("static-prune");
    let full_csv = dir.join("full.csv");
    let pruned_csv = dir.join("pruned.csv");
    let base = [
        "--size",
        "tiny",
        "sweep",
        "--no-cache",
        "--schemes",
        "3bit",
        "--orgs",
        "baseline32,byte-serial",
    ];

    let mut full = base.to_vec();
    full.extend(["--csv", full_csv.to_str().unwrap()]);
    let out = repro(&full);
    assert!(out.status.success(), "{}", stderr(&out));

    // Threshold 0 prunes nothing: the export must be byte-identical.
    let mut zero = base.to_vec();
    zero.extend(["--static-prune", "0", "--csv", pruned_csv.to_str().unwrap()]);
    let out = repro(&zero);
    assert!(out.status.success(), "{}", stderr(&out));
    assert_eq!(
        std::fs::read(&full_csv).unwrap(),
        std::fs::read(&pruned_csv).unwrap(),
        "threshold 0 must not change the export"
    );

    // An impossible threshold prunes every non-baseline configuration; the
    // pruned jobs are reported explicitly and every surviving row is
    // byte-identical to the corresponding row of the full run.
    let mut tight = base.to_vec();
    tight.extend([
        "--static-prune",
        "101",
        "--csv",
        pruned_csv.to_str().unwrap(),
    ]);
    let out = repro(&tight);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("static prune"), "{text}");
    assert!(text.contains("pruned rawcaudio/byte-serial/3bit"), "{text}");

    let full_lines: Vec<String> = std::fs::read_to_string(&full_csv)
        .unwrap()
        .lines()
        .map(str::to_owned)
        .collect();
    let pruned_lines: Vec<String> = std::fs::read_to_string(&pruned_csv)
        .unwrap()
        .lines()
        .map(str::to_owned)
        .collect();
    assert!(
        pruned_lines.len() < full_lines.len(),
        "something was pruned"
    );
    for line in &pruned_lines {
        assert!(
            full_lines.contains(line),
            "kept row must be byte-identical to the full run: {line}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
