//! CLI contract tests for the `repro` binary: malformed invocations must
//! print a named error plus the usage text and exit non-zero — never panic —
//! and `--help` must exit zero.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro runs")
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = repro(&["--help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("usage: repro"));
    assert!(text.contains("serve options:"));
    assert!(text.contains("--max-batch"));
}

#[test]
fn unknown_options_fail_with_a_named_error() {
    let out = repro(&["--frobnicate"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown option '--frobnicate'"), "{err}");
    assert!(err.contains("usage: repro"), "{err}");
}

#[test]
fn unknown_commands_fail_with_a_named_error() {
    let out = repro(&["table99"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown command 'table99'"), "{err}");
}

#[test]
fn malformed_values_name_the_flag_and_the_value() {
    for (args, needle) in [
        (
            &["--workers", "zero"][..],
            "invalid value 'zero' for --workers",
        ),
        (&["--workers", "0"], "invalid value '0' for --workers"),
        (&["--max-batch", "-3"], "invalid value '-3' for --max-batch"),
        (&["--size", "huge"], "invalid value 'huge' for --size"),
        (
            &["--schemes", "3bit,warp"],
            "invalid value '3bit,warp' for --schemes",
        ),
        (
            &["--orgs", "warp-drive"],
            "invalid value 'warp-drive' for --orgs",
        ),
        (&["--mems", "ram"], "invalid value 'ram' for --mems"),
        (
            &["--energy-model", "paper-180nm,3nm"],
            "invalid value 'paper-180nm,3nm' for --energy-model",
        ),
    ] {
        let out = repro(args);
        assert!(!out.status.success(), "{args:?} must fail");
        let err = stderr(&out);
        assert!(err.contains(needle), "{args:?}: {err}");
        assert!(err.contains("usage: repro"), "{args:?}: {err}");
    }
}

#[test]
fn options_missing_their_value_are_reported() {
    for flag in [
        "--size",
        "--workers",
        "--schemes",
        "--cache",
        "--addr",
        "--max-batch",
    ] {
        let out = repro(&[flag]);
        assert!(!out.status.success(), "{flag} must fail");
        let err = stderr(&out);
        assert!(
            err.contains(&format!("{flag} expects a value")),
            "{flag}: {err}"
        );
    }
}

#[test]
fn subcommand_flags_without_their_subcommand_are_rejected() {
    for (args, needle) in [
        (
            &["--csv", "out.csv", "table1"][..],
            "--csv only applies to the sweep subcommand",
        ),
        (
            &["serve", "--schemes", "3bit"],
            "--schemes only applies to the sweep and energy subcommands",
        ),
        (
            &["sweep", "--addr", "127.0.0.1:1"],
            "--addr only applies to the serve subcommand",
        ),
        (
            &["energy", "--energy-model", "modern-7nm"],
            "--energy-model only applies to the sweep subcommand",
        ),
        (
            &["--size", "tiny", "table1", "--workers", "2"],
            "--workers/--cache/--no-cache only apply to the sweep, energy and serve subcommands",
        ),
    ] {
        let out = repro(args);
        assert!(!out.status.success(), "{args:?} must fail");
        let err = stderr(&out);
        assert!(err.contains(needle), "{args:?}: {err}");
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn trace_without_a_subcommand_fails_with_a_named_error() {
    let out = repro(&["trace"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("trace expects a subcommand"), "{err}");
    assert!(err.contains("usage: repro"), "{err}");

    let out = repro(&["trace", "frobnicate"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("unknown trace subcommand 'frobnicate'"),
        "{}",
        stderr(&out)
    );

    // A misplaced `trace` gets a pointed error, not a misleading
    // "unknown option" from the global flag loop.
    let out = repro(&[
        "--size",
        "tiny",
        "trace",
        "record",
        "rawcaudio",
        "--out",
        "x",
    ]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("'trace' must be the first argument"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn trace_record_argument_errors_are_named() {
    for (args, needle) in [
        (
            &["trace", "record", "rawcaudio"][..],
            "trace record requires --out",
        ),
        (
            &["trace", "record", "--out", "x.sctrace"],
            "trace record expects a workload name or --all",
        ),
        (
            &["trace", "record", "a", "b", "--out", "x.sctrace"],
            "exactly one workload",
        ),
        (
            &["trace", "record", "--all", "rawcaudio", "--out", "x"],
            "mutually exclusive",
        ),
        (
            &["trace", "record", "rawcaudio", "--size"],
            "--size expects a value",
        ),
        (
            &[
                "trace",
                "record",
                "rawcaudio",
                "--size",
                "huge",
                "--out",
                "x",
            ],
            "invalid value 'huge' for --size",
        ),
    ] {
        let out = repro(args);
        assert!(!out.status.success(), "{args:?} must fail");
        assert!(stderr(&out).contains(needle), "{args:?}: {}", stderr(&out));
    }
}

#[test]
fn trace_replay_and_stat_fail_cleanly_on_missing_and_corrupt_files() {
    let dir = temp_dir("corrupt");
    let missing = dir.join("nope.sctrace");
    for verb in ["replay", "stat"] {
        let out = repro(&["trace", verb, missing.to_str().unwrap()]);
        assert!(!out.status.success(), "{verb} on a missing file must fail");
        let err = stderr(&out);
        assert!(err.contains("cannot read"), "{verb}: {err}");
    }

    let garbage = dir.join("garbage.sctrace");
    std::fs::write(&garbage, "not a trace at all\n").unwrap();
    for verb in ["replay", "stat"] {
        let out = repro(&["trace", verb, garbage.to_str().unwrap()]);
        assert!(!out.status.success(), "{verb} on garbage must fail");
        let err = stderr(&out);
        assert!(err.contains("bad magic"), "{verb}: {err}");
    }

    // A structurally-valid header with a corrupted payload must also fail
    // (the digest guards it), not silently replay wrong data.
    let recorded = dir.join("ok.sctrace");
    let out = repro(&[
        "trace",
        "record",
        "rawcaudio",
        "--size",
        "tiny",
        "--out",
        recorded.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let mut bytes = std::fs::read(&recorded).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    let tampered = dir.join("tampered.sctrace");
    std::fs::write(&tampered, bytes).unwrap();
    let out = repro(&["trace", "stat", tampered.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("digest"), "{}", stderr(&out));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_record_stat_replay_round_trip() {
    let dir = temp_dir("roundtrip");
    let path = dir.join("rawcaudio.sctrace");
    let out = repro(&[
        "trace",
        "record",
        "rawcaudio",
        "--size",
        "tiny",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("recorded rawcaudio (tiny)"), "{text}");

    let out = repro(&["trace", "stat", path.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("records"), "{text}");
    assert!(text.contains("payload verified"), "{text}");

    let out = repro(&[
        "trace",
        "replay",
        path.to_str().unwrap(),
        "--schemes",
        "3bit",
        "--orgs",
        "baseline32,byte-serial",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("replaying rawcaudio"), "{text}");
    assert!(
        text.contains("rawcaudio/byte-serial/3bit/paper/trace"),
        "{text}"
    );

    let out = repro(&["trace", "record", "unknown-kernel", "--out", "x.sctrace"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("unknown workload 'unknown-kernel'"),
        "{}",
        stderr(&out)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_traces_flag_is_sweep_only_and_fails_cleanly_on_missing_files() {
    let out = repro(&["table1", "--traces", "x.sctrace"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("--traces only applies to the sweep subcommand"),
        "{}",
        stderr(&out)
    );

    let out = repro(&[
        "sweep",
        "--no-cache",
        "--traces",
        "definitely-missing.sctrace",
    ]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(
        err.contains("cannot read trace definitely-missing.sctrace"),
        "{err}"
    );
}

#[test]
fn energy_compares_every_process_node_preset() {
    let out = repro(&[
        "--size",
        "tiny",
        "energy",
        "--no-cache",
        "--workers",
        "2",
        "--schemes",
        "3bit",
        "--orgs",
        "baseline32,byte-serial,compressed",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        text.contains("Total-energy saving by process node"),
        "{text}"
    );
    for preset in ["paper-180nm", "generic-45nm", "modern-7nm"] {
        assert!(text.contains(&format!("frontier under {preset}")), "{text}");
    }
    assert!(text.contains("3bit/compressed/paper/tiny"), "{text}");
}

#[test]
fn sweep_energy_model_flag_prints_one_frontier_per_preset() {
    let out = repro(&[
        "--size",
        "tiny",
        "sweep",
        "--no-cache",
        "--workers",
        "2",
        "--schemes",
        "3bit",
        "--orgs",
        "baseline32,byte-serial",
        "--energy-model",
        "paper-180nm,modern-7nm",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("energy model: paper-180nm"), "{text}");
    assert!(text.contains("energy model: modern-7nm"), "{text}");
    // The dynamic-only preset prints the paper-era columns, the leaky one
    // the extended set.
    assert!(text.contains("energy saving"), "{text}");
    assert!(text.contains("total saving"), "{text}");
    assert!(text.contains("leakage saving"), "{text}");
}

#[test]
fn empty_sweeps_fail_cleanly() {
    let out = repro(&["--size", "tiny", "sweep", "--no-cache", "--orgs", ""]);
    assert!(!out.status.success());
    // "" parses as an unknown organization → named error, not a panic.
    assert!(stderr(&out).contains("invalid value '' for --orgs"));
}

#[test]
fn serve_fails_cleanly_on_an_unbindable_address() {
    let out = repro(&["serve", "--addr", "256.0.0.1:1", "--no-cache"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cannot bind listener"));
}
