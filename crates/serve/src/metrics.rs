//! Server observability: lock-free counters and a fixed-bucket latency
//! histogram, rendered as the `GET /metrics` JSON document.
//!
//! Everything is an `AtomicU64` bumped with relaxed ordering — the counters
//! are statistics, not synchronization — so the hot request path never takes
//! a lock for accounting. The batching counters are the server's proof of
//! work coalescing: `jobs_simulated` staying below `jobs_requested` is the
//! deduplication guarantee the end-to-end tests assert.
//!
//! The latency histogram is a [`sigcomp_obs::Histogram`]: the struct owns
//! it (no registry lookups on the request path) and [`ServerMetrics::
//! register_global`] aliases it into the process-wide registry so
//! `GET /metrics.json` and worker snapshots see the same buckets.

use sigcomp_explore::CacheStats;
use sigcomp_obs::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bounds (exclusive, in microseconds) of the latency buckets; the
/// last bucket is unbounded. Five sub-millisecond buckets — memo hits and
/// cache answers return in tens to hundreds of microseconds, and the old
/// `[100µs, 1ms, ...]` ladder collapsed all of them into one bin.
pub const LATENCY_BOUNDS_US: &[u64] = &[
    50, 100, 250, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000,
];

/// All counters the server exposes on `GET /metrics`.
#[derive(Debug)]
pub struct ServerMetrics {
    /// Requests that produced a response (any status).
    pub http_requests: AtomicU64,
    /// Responses with a 2xx status.
    pub http_2xx: AtomicU64,
    /// Responses with a 4xx status.
    pub http_4xx: AtomicU64,
    /// Responses with a 5xx status.
    pub http_5xx: AtomicU64,
    /// Request-to-response latency histogram.
    latency: Histogram,
    /// Jobs submitted to the batcher (before any deduplication).
    pub jobs_requested: AtomicU64,
    /// Jobs shed with a fast `503 Retry-After` because the queue was full
    /// (non-blocking submissions only; batch submissions block instead).
    pub jobs_shed: AtomicU64,
    /// Jobs answered from the in-memory memo without touching the queue.
    pub jobs_memo_hits: AtomicU64,
    /// Jobs coalesced away inside a batch (duplicates of another in-flight
    /// job with the same content hash).
    pub jobs_batch_deduped: AtomicU64,
    /// Jobs answered from the shared on-disk result cache.
    pub jobs_disk_cache_hits: AtomicU64,
    /// Jobs that actually ran a fresh simulation.
    pub jobs_simulated: AtomicU64,
    /// Jobs placed on the in-process thread backend
    /// ([`sigcomp_explore::ExecBackend::LocalThreads`]) — the unique
    /// residue of each batch when the server runs with the default backend.
    pub jobs_placed_local: AtomicU64,
    /// Jobs placed on the sharded subprocess backend
    /// ([`sigcomp_explore::ExecBackend::Subprocess`]).
    pub jobs_placed_subprocess: AtomicU64,
    /// Jobs placed on the distributed fleet backend
    /// ([`sigcomp_explore::ExecBackend::Fleet`]).
    pub jobs_placed_fleet: AtomicU64,
    /// Batches dispatched to the explore executor.
    pub batches_dispatched: AtomicU64,
    /// Largest batch dispatched so far.
    pub largest_batch: AtomicU64,
    /// Sweep tickets created by `POST /sweep`.
    pub sweeps_submitted: AtomicU64,
    /// Sweeps that finished successfully.
    pub sweeps_completed: AtomicU64,
    /// Sweeps that failed (e.g. server shutdown mid-run).
    pub sweeps_failed: AtomicU64,
    /// Connections currently open in the reactor (a gauge: incremented at
    /// accept, decremented at close — also the admission-control count).
    pub conns_open: AtomicU64,
    /// Connections admitted past the accept gate.
    pub conns_accepted: AtomicU64,
    /// Connections shed at the accept gate with a fast `503` because the
    /// connection cap was reached.
    pub conns_shed: AtomicU64,
    /// Requests served on an already-used keep-alive connection (the
    /// second and later requests per connection).
    pub keepalive_reuses: AtomicU64,
    /// Connections answered `408 Request Timeout`: a partial request sat
    /// past the read deadline (the slowloris verdict).
    pub request_timeouts: AtomicU64,
    /// Connections dropped because a response write stalled past the write
    /// deadline.
    pub write_timeouts: AtomicU64,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics {
            http_requests: AtomicU64::new(0),
            http_2xx: AtomicU64::new(0),
            http_4xx: AtomicU64::new(0),
            http_5xx: AtomicU64::new(0),
            latency: Histogram::new(LATENCY_BOUNDS_US),
            jobs_requested: AtomicU64::new(0),
            jobs_shed: AtomicU64::new(0),
            jobs_memo_hits: AtomicU64::new(0),
            jobs_batch_deduped: AtomicU64::new(0),
            jobs_disk_cache_hits: AtomicU64::new(0),
            jobs_simulated: AtomicU64::new(0),
            jobs_placed_local: AtomicU64::new(0),
            jobs_placed_subprocess: AtomicU64::new(0),
            jobs_placed_fleet: AtomicU64::new(0),
            batches_dispatched: AtomicU64::new(0),
            largest_batch: AtomicU64::new(0),
            sweeps_submitted: AtomicU64::new(0),
            sweeps_completed: AtomicU64::new(0),
            sweeps_failed: AtomicU64::new(0),
            conns_open: AtomicU64::new(0),
            conns_accepted: AtomicU64::new(0),
            conns_shed: AtomicU64::new(0),
            keepalive_reuses: AtomicU64::new(0),
            request_timeouts: AtomicU64::new(0),
            write_timeouts: AtomicU64::new(0),
        }
    }
}

impl ServerMetrics {
    /// Bumps `counter` by one.
    pub fn incr(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request/response round trip in the latency histogram.
    pub fn observe_latency(&self, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.latency.observe(us);
    }

    /// Records a dispatched batch of `size` jobs.
    pub fn observe_batch(&self, size: u64) {
        self.batches_dispatched.fetch_add(1, Ordering::Relaxed);
        self.largest_batch.fetch_max(size, Ordering::Relaxed);
    }

    /// Aliases the latency histogram into the process-wide observability
    /// registry (as `serve.http.latency`), so the full-registry exports see
    /// the same buckets this struct records into. Called once at bind time
    /// — standalone instances (tests) stay out of the global registry.
    pub fn register_global(&self) {
        sigcomp_obs::global().register_histogram("serve.http.latency", &self.latency);
    }

    /// Renders every counter as the `/metrics` JSON document. `queue_depth`,
    /// `memo_entries`, `uptime`, `cache` and `fleet` are sampled by the
    /// caller (they live outside this struct); `fleet` must be a complete
    /// JSON value — the worker-pool document on a frontier, `null`
    /// elsewhere.
    #[must_use]
    pub fn to_json(
        &self,
        queue_depth: usize,
        memo_entries: usize,
        uptime: Duration,
        cache: &CacheStats,
        fleet: &str,
    ) -> String {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        format!(
            concat!(
                "{{\n",
                "  \"uptime_ms\": {uptime},\n",
                "  \"http\": {{\"requests\": {req}, \"responses_2xx\": {s2}, ",
                "\"responses_4xx\": {s4}, \"responses_5xx\": {s5}, ",
                "\"latency\": {latency}}},\n",
                "  \"batch\": {{\"queue_depth\": {depth}, \"memo_entries\": {memo}, ",
                "\"jobs_requested\": {jr}, \"jobs_shed\": {jsh}, ",
                "\"jobs_memo_hits\": {jm}, \"jobs_batch_deduped\": {jd}, ",
                "\"jobs_disk_cache_hits\": {jc}, \"jobs_simulated\": {js}, ",
                "\"batches_dispatched\": {bd}, \"largest_batch\": {lb}, ",
                "\"dispatch\": {{\"local\": {pl}, \"subprocess\": {ps}, ",
                "\"fleet\": {pf}}}}},\n",
                "  \"reactor\": {{\"open_connections\": {ro}, ",
                "\"conns_accepted\": {ra}, \"conns_shed\": {rsh}, ",
                "\"keepalive_reuses\": {rk}, \"request_timeouts\": {rt}, ",
                "\"write_timeouts\": {rw}}},\n",
                "  \"cache\": {{\"hits\": {ch}, \"misses\": {cm}, ",
                "\"retired\": {cr}, \"stores\": {cs}}},\n",
                "  \"sweeps\": {{\"submitted\": {ss}, \"completed\": {sc}, ",
                "\"failed\": {sf}}},\n",
                "  \"fleet\": {fleet}\n",
                "}}\n"
            ),
            uptime = uptime.as_millis(),
            req = get(&self.http_requests),
            s2 = get(&self.http_2xx),
            s4 = get(&self.http_4xx),
            s5 = get(&self.http_5xx),
            latency = self.latency.snapshot().to_json(),
            depth = queue_depth,
            memo = memo_entries,
            jr = get(&self.jobs_requested),
            jsh = get(&self.jobs_shed),
            jm = get(&self.jobs_memo_hits),
            jd = get(&self.jobs_batch_deduped),
            jc = get(&self.jobs_disk_cache_hits),
            js = get(&self.jobs_simulated),
            bd = get(&self.batches_dispatched),
            lb = get(&self.largest_batch),
            pl = get(&self.jobs_placed_local),
            ps = get(&self.jobs_placed_subprocess),
            pf = get(&self.jobs_placed_fleet),
            ro = get(&self.conns_open),
            ra = get(&self.conns_accepted),
            rsh = get(&self.conns_shed),
            rk = get(&self.keepalive_reuses),
            rt = get(&self.request_timeouts),
            rw = get(&self.write_timeouts),
            ch = cache.hits,
            cm = cache.misses,
            cr = cache.retired,
            cs = cache.stores,
            ss = get(&self.sweeps_submitted),
            sc = get(&self.sweeps_completed),
            sf = get(&self.sweeps_failed),
            fleet = fleet.trim_end(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    const LATENCY_LABELS: [&str; 12] = [
        "le_50us", "le_100us", "le_250us", "le_500us", "le_1ms", "le_5ms", "le_10ms", "le_50ms",
        "le_100ms", "le_500ms", "le_1s", "gt_1s",
    ];

    fn latency_doc(m: &ServerMetrics) -> Json {
        let doc =
            Json::parse(&m.to_json(0, 0, Duration::ZERO, &CacheStats::default(), "null")).unwrap();
        doc.get("http")
            .and_then(|h| h.get("latency"))
            .cloned()
            .expect("latency section")
    }

    #[test]
    fn latency_buckets_cover_the_full_range() {
        let m = ServerMetrics::default();
        for us in [
            5, 80, 120, 300, 700, 2_000, 7_000, 20_000, 70_000, 200_000, 700_000,
        ] {
            m.observe_latency(Duration::from_micros(us));
        }
        m.observe_latency(Duration::from_secs(5));
        let latency = latency_doc(&m);
        for label in LATENCY_LABELS {
            assert_eq!(
                latency.get(label).and_then(Json::as_u64),
                Some(1),
                "bucket {label}"
            );
        }
        assert_eq!(latency.get("count").and_then(Json::as_u64), Some(12));
    }

    #[test]
    fn latency_bucket_assignment_is_pinned_at_the_edges() {
        // Regression: bounds are upper-exclusive, and sub-millisecond
        // requests must spread across five buckets instead of collapsing
        // into the first.
        let m = ServerMetrics::default();
        m.observe_latency(Duration::from_micros(49)); // le_50us
        m.observe_latency(Duration::from_micros(50)); // le_100us (50 is excluded from le_50us)
        m.observe_latency(Duration::from_micros(99)); // le_100us
        m.observe_latency(Duration::from_micros(100)); // le_250us
        m.observe_latency(Duration::from_micros(999)); // le_1ms
        m.observe_latency(Duration::from_millis(1)); // le_5ms
        m.observe_latency(Duration::from_micros(999_999)); // le_1s
        m.observe_latency(Duration::from_secs(1)); // gt_1s (1s is excluded from le_1s)
        let latency = latency_doc(&m);
        let bucket = |label: &str| latency.get(label).and_then(Json::as_u64).unwrap();
        assert_eq!(bucket("le_50us"), 1);
        assert_eq!(bucket("le_100us"), 2);
        assert_eq!(bucket("le_250us"), 1);
        assert_eq!(bucket("le_500us"), 0);
        assert_eq!(bucket("le_1ms"), 1);
        assert_eq!(bucket("le_5ms"), 1);
        assert_eq!(bucket("le_1s"), 1);
        assert_eq!(bucket("gt_1s"), 1);
    }

    #[test]
    fn latency_quantiles_are_exported() {
        let m = ServerMetrics::default();
        for _ in 0..90 {
            m.observe_latency(Duration::from_micros(75));
        }
        for _ in 0..10 {
            m.observe_latency(Duration::from_millis(800));
        }
        let latency = latency_doc(&m);
        let p50 = latency.get("p50").and_then(Json::as_f64).expect("p50");
        let p99 = latency.get("p99").and_then(Json::as_f64).expect("p99");
        assert!((50.0..100.0).contains(&p50), "p50 = {p50}");
        assert!(p99 > 100_000.0, "p99 = {p99}");
    }

    #[test]
    fn metrics_json_parses_and_carries_counters() {
        let m = ServerMetrics::default();
        for _ in 0..7 {
            ServerMetrics::incr(&m.jobs_requested);
        }
        ServerMetrics::incr(&m.jobs_simulated);
        for _ in 0..3 {
            ServerMetrics::incr(&m.jobs_placed_local);
        }
        ServerMetrics::incr(&m.jobs_placed_subprocess);
        for _ in 0..2 {
            ServerMetrics::incr(&m.jobs_placed_fleet);
        }
        for _ in 0..4 {
            ServerMetrics::incr(&m.jobs_shed);
        }
        m.observe_batch(5);
        m.observe_batch(3);
        let cache = CacheStats {
            hits: 11,
            misses: 4,
            retired: 1,
            stores: 5,
        };
        let fleet = "{\"known\": 2, \"live\": 1}";
        let doc =
            Json::parse(&m.to_json(2, 6, Duration::from_millis(1234), &cache, fleet)).unwrap();
        assert_eq!(doc.get("uptime_ms").and_then(Json::as_u64), Some(1234));
        let batch = doc.get("batch").unwrap();
        assert_eq!(batch.get("queue_depth").and_then(Json::as_u64), Some(2));
        assert_eq!(batch.get("memo_entries").and_then(Json::as_u64), Some(6));
        assert_eq!(batch.get("jobs_requested").and_then(Json::as_u64), Some(7));
        assert_eq!(batch.get("jobs_simulated").and_then(Json::as_u64), Some(1));
        assert_eq!(
            batch.get("batches_dispatched").and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(batch.get("largest_batch").and_then(Json::as_u64), Some(5));
        assert_eq!(batch.get("jobs_shed").and_then(Json::as_u64), Some(4));
        let dispatch = batch.get("dispatch").expect("dispatch section");
        assert_eq!(dispatch.get("local").and_then(Json::as_u64), Some(3));
        assert_eq!(dispatch.get("subprocess").and_then(Json::as_u64), Some(1));
        assert_eq!(dispatch.get("fleet").and_then(Json::as_u64), Some(2));
        let reactor = doc.get("reactor").expect("reactor section");
        assert_eq!(
            reactor.get("open_connections").and_then(Json::as_u64),
            Some(0)
        );
        for counter in [
            "conns_accepted",
            "conns_shed",
            "keepalive_reuses",
            "request_timeouts",
            "write_timeouts",
        ] {
            assert_eq!(reactor.get(counter).and_then(Json::as_u64), Some(0));
        }
        let fleet_doc = doc.get("fleet").expect("fleet section");
        assert_eq!(fleet_doc.get("known").and_then(Json::as_u64), Some(2));
        assert_eq!(fleet_doc.get("live").and_then(Json::as_u64), Some(1));
        let cache_doc = doc.get("cache").expect("cache section");
        assert_eq!(cache_doc.get("hits").and_then(Json::as_u64), Some(11));
        assert_eq!(cache_doc.get("misses").and_then(Json::as_u64), Some(4));
        assert_eq!(cache_doc.get("retired").and_then(Json::as_u64), Some(1));
        assert_eq!(cache_doc.get("stores").and_then(Json::as_u64), Some(5));
    }
}
