//! Server observability: lock-free counters and a fixed-bucket latency
//! histogram, rendered as the `GET /metrics` JSON document.
//!
//! Everything is an `AtomicU64` bumped with relaxed ordering — the counters
//! are statistics, not synchronization — so the hot request path never takes
//! a lock for accounting. The batching counters are the server's proof of
//! work coalescing: `jobs_simulated` staying below `jobs_requested` is the
//! deduplication guarantee the end-to-end tests assert.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bounds (exclusive, in microseconds) of the latency buckets; the
/// last bucket is unbounded.
const LATENCY_BOUNDS_US: [u64; 5] = [100, 1_000, 10_000, 100_000, 1_000_000];

/// JSON field names for the latency buckets, aligned with
/// [`LATENCY_BOUNDS_US`] plus the overflow bucket.
const LATENCY_LABELS: [&str; 6] = [
    "le_100us", "le_1ms", "le_10ms", "le_100ms", "le_1s", "gt_1s",
];

/// All counters the server exposes on `GET /metrics`.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Requests that produced a response (any status).
    pub http_requests: AtomicU64,
    /// Responses with a 2xx status.
    pub http_2xx: AtomicU64,
    /// Responses with a 4xx status.
    pub http_4xx: AtomicU64,
    /// Responses with a 5xx status.
    pub http_5xx: AtomicU64,
    /// Request-to-response latency histogram.
    latency: [AtomicU64; 6],
    /// Jobs submitted to the batcher (before any deduplication).
    pub jobs_requested: AtomicU64,
    /// Jobs answered from the in-memory memo without touching the queue.
    pub jobs_memo_hits: AtomicU64,
    /// Jobs coalesced away inside a batch (duplicates of another in-flight
    /// job with the same content hash).
    pub jobs_batch_deduped: AtomicU64,
    /// Jobs answered from the shared on-disk result cache.
    pub jobs_disk_cache_hits: AtomicU64,
    /// Jobs that actually ran a fresh simulation.
    pub jobs_simulated: AtomicU64,
    /// Jobs placed on the in-process thread backend
    /// ([`sigcomp_explore::ExecBackend::LocalThreads`]) — the unique
    /// residue of each batch when the server runs with the default backend.
    pub jobs_placed_local: AtomicU64,
    /// Jobs placed on the sharded subprocess backend
    /// ([`sigcomp_explore::ExecBackend::Subprocess`]).
    pub jobs_placed_subprocess: AtomicU64,
    /// Batches dispatched to the explore executor.
    pub batches_dispatched: AtomicU64,
    /// Largest batch dispatched so far.
    pub largest_batch: AtomicU64,
    /// Sweep tickets created by `POST /sweep`.
    pub sweeps_submitted: AtomicU64,
    /// Sweeps that finished successfully.
    pub sweeps_completed: AtomicU64,
    /// Sweeps that failed (e.g. server shutdown mid-run).
    pub sweeps_failed: AtomicU64,
}

impl ServerMetrics {
    /// Bumps `counter` by one.
    pub fn incr(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request/response round trip in the latency histogram.
    pub fn observe_latency(&self, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let bucket = LATENCY_BOUNDS_US
            .iter()
            .position(|&bound| us < bound)
            .unwrap_or(LATENCY_BOUNDS_US.len());
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a dispatched batch of `size` jobs.
    pub fn observe_batch(&self, size: u64) {
        self.batches_dispatched.fetch_add(1, Ordering::Relaxed);
        self.largest_batch.fetch_max(size, Ordering::Relaxed);
    }

    /// Renders every counter as the `/metrics` JSON document. `queue_depth`,
    /// `memo_entries` and `uptime` are sampled by the caller (they live
    /// outside this struct).
    #[must_use]
    pub fn to_json(&self, queue_depth: usize, memo_entries: usize, uptime: Duration) -> String {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut latency = String::new();
        for (i, label) in LATENCY_LABELS.iter().enumerate() {
            if i > 0 {
                latency.push_str(", ");
            }
            latency.push_str(&format!("\"{label}\": {}", get(&self.latency[i])));
        }
        format!(
            concat!(
                "{{\n",
                "  \"uptime_ms\": {uptime},\n",
                "  \"http\": {{\"requests\": {req}, \"responses_2xx\": {s2}, ",
                "\"responses_4xx\": {s4}, \"responses_5xx\": {s5}, ",
                "\"latency\": {{{latency}}}}},\n",
                "  \"batch\": {{\"queue_depth\": {depth}, \"memo_entries\": {memo}, ",
                "\"jobs_requested\": {jr}, ",
                "\"jobs_memo_hits\": {jm}, \"jobs_batch_deduped\": {jd}, ",
                "\"jobs_disk_cache_hits\": {jc}, \"jobs_simulated\": {js}, ",
                "\"batches_dispatched\": {bd}, \"largest_batch\": {lb}, ",
                "\"dispatch\": {{\"local\": {pl}, \"subprocess\": {ps}}}}},\n",
                "  \"sweeps\": {{\"submitted\": {ss}, \"completed\": {sc}, ",
                "\"failed\": {sf}}}\n",
                "}}\n"
            ),
            uptime = uptime.as_millis(),
            req = get(&self.http_requests),
            s2 = get(&self.http_2xx),
            s4 = get(&self.http_4xx),
            s5 = get(&self.http_5xx),
            latency = latency,
            depth = queue_depth,
            memo = memo_entries,
            jr = get(&self.jobs_requested),
            jm = get(&self.jobs_memo_hits),
            jd = get(&self.jobs_batch_deduped),
            jc = get(&self.jobs_disk_cache_hits),
            js = get(&self.jobs_simulated),
            bd = get(&self.batches_dispatched),
            lb = get(&self.largest_batch),
            pl = get(&self.jobs_placed_local),
            ps = get(&self.jobs_placed_subprocess),
            ss = get(&self.sweeps_submitted),
            sc = get(&self.sweeps_completed),
            sf = get(&self.sweeps_failed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn latency_buckets_cover_the_full_range() {
        let m = ServerMetrics::default();
        m.observe_latency(Duration::from_micros(5));
        m.observe_latency(Duration::from_micros(500));
        m.observe_latency(Duration::from_millis(5));
        m.observe_latency(Duration::from_millis(50));
        m.observe_latency(Duration::from_millis(500));
        m.observe_latency(Duration::from_secs(5));
        let doc = Json::parse(&m.to_json(0, 0, Duration::ZERO)).unwrap();
        let latency = doc.get("http").and_then(|h| h.get("latency")).unwrap();
        for label in LATENCY_LABELS {
            assert_eq!(
                latency.get(label).and_then(Json::as_u64),
                Some(1),
                "bucket {label}"
            );
        }
    }

    #[test]
    fn metrics_json_parses_and_carries_counters() {
        let m = ServerMetrics::default();
        for _ in 0..7 {
            ServerMetrics::incr(&m.jobs_requested);
        }
        ServerMetrics::incr(&m.jobs_simulated);
        for _ in 0..3 {
            ServerMetrics::incr(&m.jobs_placed_local);
        }
        ServerMetrics::incr(&m.jobs_placed_subprocess);
        m.observe_batch(5);
        m.observe_batch(3);
        let doc = Json::parse(&m.to_json(2, 6, Duration::from_millis(1234))).unwrap();
        assert_eq!(doc.get("uptime_ms").and_then(Json::as_u64), Some(1234));
        let batch = doc.get("batch").unwrap();
        assert_eq!(batch.get("queue_depth").and_then(Json::as_u64), Some(2));
        assert_eq!(batch.get("memo_entries").and_then(Json::as_u64), Some(6));
        assert_eq!(batch.get("jobs_requested").and_then(Json::as_u64), Some(7));
        assert_eq!(batch.get("jobs_simulated").and_then(Json::as_u64), Some(1));
        assert_eq!(
            batch.get("batches_dispatched").and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(batch.get("largest_batch").and_then(Json::as_u64), Some(5));
        let dispatch = batch.get("dispatch").expect("dispatch section");
        assert_eq!(dispatch.get("local").and_then(Json::as_u64), Some(3));
        assert_eq!(dispatch.get("subprocess").and_then(Json::as_u64), Some(1));
    }
}
