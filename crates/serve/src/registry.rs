//! Asynchronous sweep tickets: `POST /sweep` creates one, a background
//! thread runs the sweep through the batcher, and `GET /jobs/:id` polls it.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default retention of *finished* tickets (and their result documents); a
/// long-running server must not grow without bound, so once a ticket falls
/// out of the window polling it returns 404. Running tickets are never
/// evicted. Override with [`SweepRegistry::with_capacity`] (the
/// `repro serve --ticket-cap` flag).
pub const MAX_FINISHED_TICKETS: usize = 64;

/// The lifecycle of one asynchronous sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepState {
    /// Still executing.
    Running,
    /// Finished; the payload is the ready-to-serve JSON result document.
    Done(String),
    /// Failed; the payload is a human-readable reason.
    Failed(String),
}

#[derive(Debug, Default)]
struct Tickets {
    jobs: HashMap<u64, SweepState>,
    /// Finished ids, oldest first, for eviction beyond the retention window.
    finished: VecDeque<u64>,
}

impl Tickets {
    fn settle(&mut self, id: u64, state: SweepState, capacity: usize) {
        self.jobs.insert(id, state);
        self.finished.push_back(id);
        while self.finished.len() > capacity {
            if let Some(evicted) = self.finished.pop_front() {
                self.jobs.remove(&evicted);
            }
        }
    }
}

/// Thread-safe registry of sweep tickets, keyed by a monotonically
/// increasing id. Finished tickets are retained up to the configured
/// capacity ([`MAX_FINISHED_TICKETS`] by default), then evicted
/// oldest-first — so sustained distinct `/sweep` traffic holds the
/// registry's memory flat.
#[derive(Debug)]
pub struct SweepRegistry {
    tickets: Mutex<Tickets>,
    next_id: AtomicU64,
    capacity: usize,
}

impl Default for SweepRegistry {
    fn default() -> Self {
        SweepRegistry::with_capacity(MAX_FINISHED_TICKETS)
    }
}

impl SweepRegistry {
    /// A registry retaining at most `capacity` finished tickets (clamped to
    /// at least 1 — a ticket must survive long enough to be polled once).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        SweepRegistry {
            tickets: Mutex::default(),
            next_id: AtomicU64::new(0),
            capacity: capacity.max(1),
        }
    }

    /// The configured finished-ticket retention.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Creates a new ticket in the [`SweepState::Running`] state and returns
    /// its id.
    #[must_use]
    pub fn create(&self) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.tickets
            .lock()
            .expect("registry poisoned")
            .jobs
            .insert(id, SweepState::Running);
        id
    }

    /// Marks ticket `id` done with the given result document.
    pub fn finish(&self, id: u64, result_json: String) {
        self.tickets.lock().expect("registry poisoned").settle(
            id,
            SweepState::Done(result_json),
            self.capacity,
        );
    }

    /// Marks ticket `id` failed with the given reason.
    pub fn fail(&self, id: u64, reason: String) {
        self.tickets.lock().expect("registry poisoned").settle(
            id,
            SweepState::Failed(reason),
            self.capacity,
        );
    }

    /// Tickets currently retained (running + finished) — a point-in-time
    /// sample for observability and the memory-flatness tests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tickets.lock().expect("registry poisoned").jobs.len()
    }

    /// Whether no tickets are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of ticket `id`, or `None` for unknown (or evicted) ids.
    #[must_use]
    pub fn get(&self, id: u64) -> Option<SweepState> {
        self.tickets
            .lock()
            .expect("registry poisoned")
            .jobs
            .get(&id)
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tickets_progress_and_ids_are_unique() {
        let registry = SweepRegistry::default();
        let a = registry.create();
        let b = registry.create();
        assert_ne!(a, b);
        assert_eq!(registry.get(a), Some(SweepState::Running));
        registry.finish(a, "{}".to_owned());
        assert_eq!(registry.get(a), Some(SweepState::Done("{}".to_owned())));
        registry.fail(b, "boom".to_owned());
        assert_eq!(registry.get(b), Some(SweepState::Failed("boom".to_owned())));
        assert_eq!(registry.get(999), None);
    }

    #[test]
    fn finished_tickets_are_evicted_oldest_first() {
        let registry = SweepRegistry::default();
        let first = registry.create();
        registry.finish(first, "first".to_owned());
        let running = registry.create(); // never settled — never evicted
        for _ in 0..MAX_FINISHED_TICKETS {
            let id = registry.create();
            registry.finish(id, "filler".to_owned());
        }
        assert_eq!(registry.get(first), None, "oldest finished ticket evicted");
        assert_eq!(registry.get(running), Some(SweepState::Running));
    }

    #[test]
    fn sustained_distinct_tickets_hold_memory_flat_at_the_configured_cap() {
        let registry = SweepRegistry::with_capacity(5);
        assert_eq!(registry.capacity(), 5);
        for round in 0..100 {
            let id = registry.create();
            registry.finish(id, format!("result {round}"));
            assert!(
                registry.len() <= 5,
                "round {round}: registry grew to {}",
                registry.len()
            );
        }
        // The newest ticket is still pollable, the oldest long gone.
        assert_eq!(registry.len(), 5);
        assert_eq!(registry.get(1), None);

        // A zero capacity clamps to 1: every ticket is briefly pollable.
        let tiny = SweepRegistry::with_capacity(0);
        assert_eq!(tiny.capacity(), 1);
        let id = tiny.create();
        tiny.finish(id, "kept".to_owned());
        assert_eq!(tiny.get(id), Some(SweepState::Done("kept".to_owned())));
    }
}
