//! Asynchronous sweep tickets: `POST /sweep` creates one, a background
//! thread runs the sweep through the batcher, and `GET /jobs/:id` polls it.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How many *finished* tickets (and their result documents) are retained; a
/// long-running server must not grow without bound, so once a ticket falls
/// out of the window polling it returns 404. Running tickets are never
/// evicted.
pub const MAX_FINISHED_TICKETS: usize = 64;

/// The lifecycle of one asynchronous sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepState {
    /// Still executing.
    Running,
    /// Finished; the payload is the ready-to-serve JSON result document.
    Done(String),
    /// Failed; the payload is a human-readable reason.
    Failed(String),
}

#[derive(Debug, Default)]
struct Tickets {
    jobs: HashMap<u64, SweepState>,
    /// Finished ids, oldest first, for eviction beyond the retention window.
    finished: VecDeque<u64>,
}

impl Tickets {
    fn settle(&mut self, id: u64, state: SweepState) {
        self.jobs.insert(id, state);
        self.finished.push_back(id);
        while self.finished.len() > MAX_FINISHED_TICKETS {
            if let Some(evicted) = self.finished.pop_front() {
                self.jobs.remove(&evicted);
            }
        }
    }
}

/// Thread-safe registry of sweep tickets, keyed by a monotonically
/// increasing id. Finished tickets are retained up to
/// [`MAX_FINISHED_TICKETS`], then evicted oldest-first.
#[derive(Debug, Default)]
pub struct SweepRegistry {
    tickets: Mutex<Tickets>,
    next_id: AtomicU64,
}

impl SweepRegistry {
    /// Creates a new ticket in the [`SweepState::Running`] state and returns
    /// its id.
    #[must_use]
    pub fn create(&self) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.tickets
            .lock()
            .expect("registry poisoned")
            .jobs
            .insert(id, SweepState::Running);
        id
    }

    /// Marks ticket `id` done with the given result document.
    pub fn finish(&self, id: u64, result_json: String) {
        self.tickets
            .lock()
            .expect("registry poisoned")
            .settle(id, SweepState::Done(result_json));
    }

    /// Marks ticket `id` failed with the given reason.
    pub fn fail(&self, id: u64, reason: String) {
        self.tickets
            .lock()
            .expect("registry poisoned")
            .settle(id, SweepState::Failed(reason));
    }

    /// A snapshot of ticket `id`, or `None` for unknown (or evicted) ids.
    #[must_use]
    pub fn get(&self, id: u64) -> Option<SweepState> {
        self.tickets
            .lock()
            .expect("registry poisoned")
            .jobs
            .get(&id)
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tickets_progress_and_ids_are_unique() {
        let registry = SweepRegistry::default();
        let a = registry.create();
        let b = registry.create();
        assert_ne!(a, b);
        assert_eq!(registry.get(a), Some(SweepState::Running));
        registry.finish(a, "{}".to_owned());
        assert_eq!(registry.get(a), Some(SweepState::Done("{}".to_owned())));
        registry.fail(b, "boom".to_owned());
        assert_eq!(registry.get(b), Some(SweepState::Failed("boom".to_owned())));
        assert_eq!(registry.get(999), None);
    }

    #[test]
    fn finished_tickets_are_evicted_oldest_first() {
        let registry = SweepRegistry::default();
        let first = registry.create();
        registry.finish(first, "first".to_owned());
        let running = registry.create(); // never settled — never evicted
        for _ in 0..MAX_FINISHED_TICKETS {
            let id = registry.create();
            registry.finish(id, "filler".to_owned());
        }
        assert_eq!(registry.get(first), None, "oldest finished ticket evicted");
        assert_eq!(registry.get(running), Some(SweepState::Running));
    }
}
