//! A minimal JSON parser and string escaper.
//!
//! The workspace carries no serialization dependency, so request bodies are
//! decoded by this hand-rolled recursive-descent parser (the encode side
//! stays hand-formatted, mirroring `sigcomp_explore::report::to_json`).
//! The parser accepts the full JSON grammar — nested values up to
//! [`MAX_DEPTH`], `\uXXXX` escapes including surrogate pairs — and reports
//! errors with a byte offset so 400 responses can say where a body went
//! wrong.

use std::fmt;

/// Maximum nesting depth accepted by [`Json::parse`]; deeper documents are
/// rejected rather than risking a recursion overflow on hostile input.
pub const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// Any number. Stored as `f64`; [`Json::as_u64`] checks exactness.
    Num(f64),
    /// A string, with all escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, pairs kept in document order. Duplicate keys are
    /// preserved; [`Json::get`] returns the first match.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what went wrong and the byte offset it went wrong at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// Human-readable description of the problem.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Why a JSON value could not be decoded as an exact `u64`
/// ([`Json::to_u64`]). Named variants, so decode failures surface as a
/// specific rejection instead of a silently clamped cast or an anonymous
/// `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumError {
    /// The value is not a number at all.
    NotANumber,
    /// The number is negative; a `u64` field cannot hold it.
    Negative,
    /// The number has a fractional part.
    Fractional,
    /// The number exceeds 2⁵³, beyond which an `f64` no longer represents
    /// every integer and a cast would silently lose (or clamp) bits.
    TooLarge,
}

impl fmt::Display for NumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NumError::NotANumber => "not a number",
            NumError::Negative => "is negative",
            NumError::Fractional => "has a fractional part",
            NumError::TooLarge => "exceeds 2^53 (the exact-integer range of JSON numbers)",
        })
    }
}

impl std::error::Error for NumError {}

impl Json {
    /// Parses a complete JSON document (one value, surrounded by optional
    /// whitespace).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first syntax problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }

    /// Looks up `key` in an object (first match wins); `None` for missing
    /// keys and non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer: a number with no fractional
    /// part that round-trips through `u64` unchanged. Convenience wrapper
    /// over [`Json::to_u64`] for callers that don't need the reason.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        self.to_u64().ok()
    }

    /// Decodes the value as an exact unsigned integer, naming exactly why a
    /// value is rejected. Never clamps: a negative, fractional, or
    /// out-of-range number (beyond 2⁵³, where `f64` stops representing
    /// every integer — so anything near or past 2⁶⁴ too) is an error, not a
    /// silently saturated cast.
    ///
    /// # Errors
    ///
    /// The [`NumError`] variant describing the rejection.
    pub fn to_u64(&self) -> Result<u64, NumError> {
        let n = self.as_f64().ok_or(NumError::NotANumber)?;
        if n < 0.0 {
            return Err(NumError::Negative);
        }
        if n > 9_007_199_254_740_992.0 {
            return Err(NumError::TooLarge);
        }
        if n.fract() != 0.0 {
            return Err(NumError::Fractional);
        }
        Ok(n as u64)
    }

    /// The element slice, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The elements as strings, if this is an array of strings.
    #[must_use]
    pub fn str_items(&self) -> Option<Vec<&str>> {
        self.as_arr()?.iter().map(Json::as_str).collect()
    }

    /// The keys of an object, in document order.
    #[must_use]
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(pairs) => pairs.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }
}

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included): `"`, `\` and control characters become escape sequences.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, literal: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.expect_literal("null", Json::Null),
            Some(b't') => self.expect_literal("true", Json::Bool(true)),
            Some(b'f') => self.expect_literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or ']' in array"));
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // {
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(pairs));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or '}' in object"));
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape_char()?);
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: the input is a &str and `pos` only
                    // ever advances by whole scalars, so slicing here is a
                    // char boundary and decoding one char is O(1) — no
                    // re-validation of the remaining input.
                    let c = self.text[self.pos..]
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn escape_char(&mut self) -> Result<char, JsonError> {
        let b = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{0008}',
            b'f' => '\u{000c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => return self.unicode_escape(),
            _ => return Err(self.err("unknown escape sequence")),
        })
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        let code = if (0xd800..0xdc00).contains(&first) {
            // High surrogate: a low surrogate must follow.
            if !(self.eat(b'\\') && self.eat(b'u')) {
                return Err(self.err("unpaired surrogate"));
            }
            let second = self.hex4()?;
            if !(0xdc00..0xe000).contains(&second) {
                return Err(self.err("invalid low surrogate"));
            }
            0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00)
        } else if (0xdc00..0xe000).contains(&first) {
            return Err(self.err("unpaired surrogate"));
        } else {
            first
        };
        char::from_u32(code).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let _ = self.eat(b'-');
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-12.5e1").unwrap(), Json::Num(-125.0));
        assert_eq!(
            Json::parse(r#""a\n\"b\" é 😀""#).unwrap(),
            Json::Str("a\n\"b\" é 😀".to_owned())
        );
        let doc =
            Json::parse(r#"{"workload": "pgp", "sizes": ["tiny", "large"], "n": 3}"#).unwrap();
        assert_eq!(doc.get("workload").and_then(Json::as_str), Some("pgp"));
        assert_eq!(
            doc.get("sizes").and_then(Json::str_items),
            Some(vec!["tiny", "large"])
        );
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.keys(), vec!["workload", "sizes", "n"]);
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "nul",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud800 alone\"",
            "1 2",
            "{\"a\": 1} extra",
            "\u{0007}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_hostile_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert_eq!(Json::parse(&deep).unwrap_err().message, "nesting too deep");
    }

    #[test]
    fn as_u64_is_exact() {
        assert_eq!(Json::parse("18").unwrap().as_u64(), Some(18));
        assert_eq!(Json::parse("18.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1e300").unwrap().as_u64(), None);
    }

    #[test]
    fn to_u64_names_every_rejection_instead_of_clamping() {
        // Regression: a float cast (`n as u64`) would silently clamp
        // negatives to 0 and huge values to u64::MAX; the decoder must
        // reject with a named error instead.
        assert_eq!(Json::parse("18").unwrap().to_u64(), Ok(18));
        assert_eq!(Json::parse("0").unwrap().to_u64(), Ok(0));
        // 2^53 is the last exactly-representable integer and is accepted.
        assert_eq!(
            Json::parse("9007199254740992").unwrap().to_u64(),
            Ok(9_007_199_254_740_992)
        );
        for (text, expected) in [
            ("-1", NumError::Negative),
            ("-0.5", NumError::Negative),
            ("-1e999", NumError::Negative),
            ("18.5", NumError::Fractional),
            // Would clamp to u64::MAX through a bare cast.
            ("1e300", NumError::TooLarge),
            ("1e999", NumError::TooLarge),
            ("18446744073709551616", NumError::TooLarge),
            // Past 2^53 the round trip through f64 loses bits even though
            // the value fits in u64.
            ("9007199254740994", NumError::TooLarge),
        ] {
            assert_eq!(Json::parse(text).unwrap().to_u64(), Err(expected), "{text}");
        }
        assert_eq!(
            Json::parse("\"7\"").unwrap().to_u64(),
            Err(NumError::NotANumber)
        );
        assert_eq!(
            Json::parse("null").unwrap().to_u64(),
            Err(NumError::NotANumber)
        );
        // The message names the constraint for 400 bodies.
        assert!(NumError::TooLarge.to_string().contains("2^53"));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{0001}é😀";
        let parsed = Json::parse(&format!("\"{}\"", escape(nasty))).unwrap();
        assert_eq!(parsed, Json::Str(nasty.to_owned()));
    }
}
