//! Minimal HTTP/1.1 request parsing and response writing.
//!
//! Hand-rolled over `std::io` in the same spirit as the workspace's other
//! wire formats: no external dependency, strict limits, and every failure
//! mapped to a clean 4xx. The server speaks a deliberately small subset —
//! `Content-Length` bodies only (chunked transfer encoding is rejected) —
//! which is all the batching front-end needs and keeps the attack surface
//! enumerable.
//!
//! The parser is **incremental**: [`RequestParser`] is a push parser that
//! accepts raw socket bytes in whatever fragments the kernel delivers,
//! tolerates a request split at any byte boundary, and yields multiple
//! pipelined requests buffered in one read — exactly what the nonblocking
//! reactor ([`crate::reactor`]) needs. [`read_request`] wraps the same
//! parser for blocking readers (the legacy thread-per-connection path and
//! the unit tests), so there is one set of framing rules, not two.
//!
//! Keep-alive is **opt-in**: [`Response::write_with_connection`] emits
//! `Connection: keep-alive` only when the server decided to hold the
//! connection open; the plain [`Response::write_to`] keeps the historical
//! `Connection: close` so every pre-reactor client (which reads to EOF)
//! still sees the stream end.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Upper bound on the request line plus all header bytes.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Upper bound on a request body (a sweep spec is a few hundred bytes; a
/// megabyte is already hostile).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Request target, e.g. `/simulate`. Query strings are not split off.
    pub path: String,
    /// Header name/value pairs in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The value of header `name` (ASCII case-insensitive), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// True when the client explicitly asked to keep the connection open
    /// (`Connection: keep-alive`, possibly in a comma-separated list).
    ///
    /// The server's reuse policy is opt-in rather than the HTTP/1.1
    /// default-on: every pre-reactor client of this server reads responses
    /// to EOF, so a silently persistent connection would hang them. Clients
    /// that speak `Content-Length` framing (the fabric client, `load_gen`'s
    /// keep-alive mode) send the header and get reuse.
    #[must_use]
    pub fn wants_keep_alive(&self) -> bool {
        self.header("connection").is_some_and(|v| {
            v.split(',')
                .any(|token| token.trim().eq_ignore_ascii_case("keep-alive"))
        })
    }
}

/// Why a request could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The peer closed the connection before sending a request line — not a
    /// protocol error, just the end of the conversation.
    Closed,
    /// A malformed request line, header, or body framing problem.
    BadRequest(&'static str),
    /// The request line + headers exceeded [`MAX_HEADER_BYTES`].
    HeadersTooLarge,
    /// The declared body length exceeded [`MAX_BODY_BYTES`].
    BodyTooLarge,
    /// A method that carries a body arrived without `Content-Length`.
    LengthRequired,
    /// The underlying socket failed (timeout, reset, ...).
    Io(io::ErrorKind),
}

impl HttpError {
    /// The HTTP status code this error maps to.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Closed | HttpError::Io(_) => 400,
            HttpError::BadRequest(_) => 400,
            HttpError::HeadersTooLarge => 431,
            HttpError::BodyTooLarge => 413,
            HttpError::LengthRequired => 411,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::BadRequest(why) => write!(f, "bad request: {why}"),
            HttpError::HeadersTooLarge => {
                write!(f, "request headers exceed {MAX_HEADER_BYTES} bytes")
            }
            HttpError::BodyTooLarge => write!(f, "request body exceeds {MAX_BODY_BYTES} bytes"),
            HttpError::LengthRequired => write!(f, "content-length required"),
            HttpError::Io(kind) => write!(f, "i/o error: {kind:?}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e.kind())
    }
}

/// An incremental (push) HTTP/1.1 request parser.
///
/// Feed raw socket bytes with [`RequestParser::push`]; drain complete
/// requests with [`RequestParser::next_request`]. The parser tolerates
/// requests split across arbitrary TCP segment boundaries (including inside
/// the `\r\n` pair) and multiple pipelined requests arriving in one buffer,
/// and enforces the same header/body limits as [`read_request`].
///
/// After an `Err` the connection's framing is lost and unrecoverable: the
/// caller must answer with the error's status and close.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
}

/// A successfully scanned request head: the request (body still empty),
/// its byte length, and the declared body length.
struct Head {
    request: Request,
    len: usize,
    body_len: usize,
}

impl RequestParser {
    /// A fresh parser with an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        RequestParser::default()
    }

    /// Appends raw bytes received from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete request — nonzero
    /// means the peer is mid-request (the reactor's slowloris signal).
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Tries to parse one complete request off the front of the buffer.
    ///
    /// `Ok(None)` means the buffered bytes are a valid prefix — push more.
    /// Pipelined requests are returned one per call, in arrival order.
    ///
    /// # Errors
    ///
    /// Any [`HttpError`] other than [`HttpError::Closed`]: malformed or
    /// oversized framing, detected as soon as the offending line completes.
    pub fn next_request(&mut self) -> Result<Option<Request>, HttpError> {
        let Some(head) = self.scan_head()? else {
            return Ok(None);
        };
        let total = head.len + head.body_len;
        if self.buf.len() < total {
            return Ok(None);
        }
        let mut request = head.request;
        request.body = self.buf[head.len..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(request))
    }

    /// The error to report when the peer hangs up with the parser in this
    /// state: a clean EOF between requests is [`HttpError::Closed`]; EOF
    /// mid-head or mid-body names what was truncated.
    #[must_use]
    pub fn closed(&self) -> HttpError {
        if self.buf.is_empty() {
            return HttpError::Closed;
        }
        match self.scan_head() {
            Ok(Some(_)) => HttpError::BadRequest("body shorter than content-length"),
            Ok(None) => HttpError::BadRequest("connection closed inside headers"),
            Err(e) => e,
        }
    }

    /// Scans the head (request line + headers + blank line) at the front of
    /// the buffer, validating each line as soon as its terminator arrives.
    /// `Ok(None)` means the head is still incomplete.
    fn scan_head(&self) -> Result<Option<Head>, HttpError> {
        let buf = &self.buf;
        let mut pos = 0usize;
        let mut request: Option<Request> = None;
        loop {
            let Some(nl) = buf[pos..].iter().position(|&b| b == b'\n') else {
                // No terminator yet: a peer streaming an endless header
                // line must hit the limit, not our memory.
                return if buf.len() > MAX_HEADER_BYTES {
                    Err(HttpError::HeadersTooLarge)
                } else {
                    Ok(None)
                };
            };
            let line_end = pos + nl;
            let next = line_end + 1;
            if next > MAX_HEADER_BYTES {
                return Err(HttpError::HeadersTooLarge);
            }
            let mut line = &buf[pos..line_end];
            // CRLF canonical, bare LF tolerated.
            if line.last() == Some(&b'\r') {
                line = &line[..line.len() - 1];
            }
            let text = std::str::from_utf8(line)
                .map_err(|_| HttpError::BadRequest("header line is not UTF-8"))?;
            match &mut request {
                None => {
                    if text.is_empty() {
                        return Err(HttpError::BadRequest("empty request line"));
                    }
                    request = Some(parse_request_line(text)?);
                }
                Some(req) => {
                    if text.is_empty() {
                        let req = req.clone();
                        let body_len = body_length(&req)?;
                        return Ok(Some(Head {
                            request: req,
                            len: next,
                            body_len,
                        }));
                    }
                    let (name, value) = text
                        .split_once(':')
                        .ok_or(HttpError::BadRequest("header line without ':'"))?;
                    if name.is_empty() || name.contains(' ') {
                        return Err(HttpError::BadRequest("malformed header name"));
                    }
                    req.headers
                        .push((name.to_ascii_lowercase(), value.trim().to_owned()));
                }
            }
            pos = next;
        }
    }
}

/// Validates and splits `METHOD /target HTTP/1.x`.
fn parse_request_line(text: &str) -> Result<Request, HttpError> {
    let mut parts = text.split(' ');
    let method = parts.next().unwrap_or_default();
    let path = parts
        .next()
        .ok_or(HttpError::BadRequest("request line is missing the target"))?;
    let version = parts
        .next()
        .ok_or(HttpError::BadRequest("request line is missing the version"))?;
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest("malformed request line"));
    }
    if method.is_empty() || !path.starts_with('/') {
        return Err(HttpError::BadRequest("malformed request target"));
    }
    Ok(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        headers: Vec::new(),
        body: Vec::new(),
    })
}

/// Body framing rules: `Content-Length` only, required for body-carrying
/// methods, bounded by [`MAX_BODY_BYTES`].
fn body_length(request: &Request) -> Result<usize, HttpError> {
    if request.header("transfer-encoding").is_some() {
        return Err(HttpError::BadRequest(
            "chunked transfer encoding is not supported",
        ));
    }
    let length = match request.header("content-length") {
        Some(value) => Some(
            value
                .parse::<usize>()
                .map_err(|_| HttpError::BadRequest("invalid content-length"))?,
        ),
        None => None,
    };
    let length = match (length, request.method.as_str()) {
        (Some(n), _) => n,
        (None, "POST" | "PUT" | "PATCH") => return Err(HttpError::LengthRequired),
        (None, _) => 0,
    };
    if length > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge);
    }
    Ok(length)
}

/// Reads one request from `reader`, enforcing the header and body limits —
/// the blocking wrapper over [`RequestParser`] used by the legacy
/// thread-per-connection path and the tests.
///
/// # Errors
///
/// [`HttpError::Closed`] on a clean end-of-stream before any byte of a
/// request; any other variant describes a malformed or oversized request.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, HttpError> {
    let mut parser = RequestParser::new();
    loop {
        if let Some(request) = parser.next_request()? {
            return Ok(request);
        }
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Err(parser.closed());
        }
        let n = chunk.len();
        parser.push(chunk);
        reader.consume(n);
    }
}

/// An outgoing response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes (always JSON in this server).
    pub body: String,
    /// When set, emitted as a `Retry-After: <seconds>` header — the
    /// load-shedding contract: a shed client learns *when* to come back
    /// instead of guessing.
    pub retry_after: Option<u64>,
}

impl Response {
    /// A JSON response with the given status.
    #[must_use]
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            body: body.into(),
            retry_after: None,
        }
    }

    /// Adds a `Retry-After: <seconds>` header to the response.
    #[must_use]
    pub fn with_retry_after(mut self, seconds: u64) -> Self {
        self.retry_after = Some(seconds);
        self
    }

    /// A JSON error response: `{"error": "<message>"}` with the message
    /// escaped.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Self {
        Response::json(
            status,
            format!("{{\"error\": \"{}\"}}\n", crate::json::escape(message)),
        )
    }

    /// The reactor's read-deadline answer: a connection sat past its
    /// deadline with a partial request buffered (the slowloris shape), so it
    /// gets `408 Request Timeout` and the connection closes.
    #[must_use]
    pub fn request_timeout() -> Self {
        Response::error(408, "request read deadline exceeded")
    }

    /// The accept-gate's shed answer at the connection cap: a fast `503`
    /// telling the client when to retry, written before the socket closes —
    /// the batch queue's load-shedding contract extended to the socket
    /// layer.
    #[must_use]
    pub fn connection_cap(retry_after_secs: u64) -> Self {
        Response::error(503, "connection limit reached").with_retry_after(retry_after_secs)
    }

    /// Serializes the response (status line, `Content-Type`,
    /// `Content-Length`, `Connection: close`, body) to `writer`.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn write_to(&self, writer: &mut impl Write) -> io::Result<()> {
        self.write_with_connection(writer, false)
    }

    /// Serializes the response with an explicit connection disposition:
    /// `Connection: keep-alive` when the server will keep serving this
    /// connection, `Connection: close` when it will hang up after the body.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn write_with_connection(
        &self,
        writer: &mut impl Write,
        keep_alive: bool,
    ) -> io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            status_text(self.status),
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )?;
        if let Some(seconds) = self.retry_after {
            write!(writer, "Retry-After: {seconds}\r\n")?;
        }
        writer.write_all(b"\r\n")?;
        writer.write_all(self.body.as_bytes())?;
        writer.flush()
    }

    /// The full serialized response as bytes — the reactor's write buffer.
    #[must_use]
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 128);
        self.write_with_connection(&mut out, keep_alive)
            .expect("writing to a Vec cannot fail");
        out
    }
}

/// The canonical reason phrase for the status codes this server emits.
#[must_use]
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(input: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(input))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse(b"POST /simulate HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/simulate");
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn parses_a_get_without_body_and_bare_lf() {
        let req = parse(b"GET /healthz HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn clean_eof_reads_as_closed() {
        assert_eq!(parse(b"").unwrap_err(), HttpError::Closed);
    }

    #[test]
    fn truncated_headers_are_rejected() {
        for truncated in [
            &b"GET /x HTTP/1.1"[..],           // EOF mid request line
            b"GET /x HTTP/1.1\r\nHost: x",     // EOF mid header
            b"GET /x HTTP/1.1\r\nHost: x\r\n", // EOF before blank line
        ] {
            let err = parse(truncated).unwrap_err();
            assert!(
                matches!(err, HttpError::BadRequest(_)),
                "{truncated:?} gave {err:?}"
            );
            assert_eq!(err.status(), 400);
        }
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        for bad in [
            &b"\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x\r\n\r\n",
            b"GET /x HTTP/2 extra\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET /x FTP/1.1\r\n\r\n",
        ] {
            let err = parse(bad).unwrap_err();
            assert!(
                matches!(err, HttpError::BadRequest(_)),
                "{bad:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn malformed_headers_are_rejected() {
        let err = parse(b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n").unwrap_err();
        assert_eq!(err, HttpError::BadRequest("header line without ':'"));
        let err = parse(b"GET /x HTTP/1.1\r\nbad name: v\r\n\r\n").unwrap_err();
        assert_eq!(err, HttpError::BadRequest("malformed header name"));
        let err = parse(b"GET /x HTTP/1.1\r\nHost: \xff\xfe\r\n\r\n").unwrap_err();
        assert_eq!(err, HttpError::BadRequest("header line is not UTF-8"));
    }

    #[test]
    fn bad_content_length_is_rejected() {
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n").unwrap_err();
        assert_eq!(err, HttpError::BadRequest("invalid content-length"));
        assert_eq!(err.status(), 400);
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: -1\r\n\r\n").unwrap_err();
        assert_eq!(err, HttpError::BadRequest("invalid content-length"));
    }

    #[test]
    fn missing_content_length_on_post_is_rejected() {
        let err = parse(b"POST /x HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(err, HttpError::LengthRequired);
        assert_eq!(err.status(), 411);
    }

    #[test]
    fn oversized_bodies_are_rejected_without_reading_them() {
        let request = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = parse(request.as_bytes()).unwrap_err();
        assert_eq!(err, HttpError::BodyTooLarge);
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn short_bodies_are_rejected() {
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nonly4").unwrap_err();
        assert_eq!(
            err,
            HttpError::BadRequest("body shorter than content-length")
        );
    }

    #[test]
    fn oversized_headers_are_rejected() {
        let huge = format!(
            "GET /x HTTP/1.1\r\nX-Fill: {}\r\n\r\n",
            "a".repeat(MAX_HEADER_BYTES)
        );
        let err = parse(huge.as_bytes()).unwrap_err();
        assert_eq!(err, HttpError::HeadersTooLarge);
        assert_eq!(err.status(), 431);
        // An endless single line (no terminator at all) must also hit the
        // limit rather than buffering forever.
        let endless = format!("GET /x{}", "a".repeat(MAX_HEADER_BYTES * 2));
        let err = parse(endless.as_bytes()).unwrap_err();
        assert_eq!(err, HttpError::HeadersTooLarge);
    }

    #[test]
    fn chunked_encoding_is_rejected() {
        let err = parse(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(
            err,
            HttpError::BadRequest("chunked transfer encoding is not supported")
        );
    }

    // ---- incremental-parser hardening ------------------------------------

    #[test]
    fn requests_split_at_every_byte_boundary_parse_identically() {
        let wire = b"POST /simulate HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        let whole = parse(wire).unwrap();
        for split in 0..=wire.len() {
            let mut parser = RequestParser::new();
            parser.push(&wire[..split]);
            if split < wire.len() {
                // A valid prefix must never error or yield a request early.
                assert_eq!(
                    parser.next_request().expect("prefix is valid"),
                    None,
                    "split at {split} yielded a request early"
                );
            }
            parser.push(&wire[split..]);
            let req = parser
                .next_request()
                .unwrap_or_else(|e| panic!("split at {split}: {e}"))
                .unwrap_or_else(|| panic!("split at {split}: incomplete"));
            assert_eq!(req, whole, "split at {split}");
            assert_eq!(parser.buffered(), 0);
        }
    }

    #[test]
    fn two_pipelined_requests_in_one_push_parse_in_order() {
        let mut parser = RequestParser::new();
        parser.push(
            b"POST /simulate HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc\
              GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n",
        );
        let first = parser.next_request().unwrap().expect("first request");
        assert_eq!(first.method, "POST");
        assert_eq!(first.body, b"abc");
        let second = parser.next_request().unwrap().expect("second request");
        assert_eq!(second.method, "GET");
        assert_eq!(second.path, "/healthz");
        assert_eq!(parser.next_request().unwrap(), None);
        assert_eq!(parser.buffered(), 0);
    }

    #[test]
    fn pipelined_lf_only_requests_parse() {
        // CRLF-only robustness: a peer that terminates every line with a
        // bare LF still frames correctly, including across pipelining.
        let mut parser = RequestParser::new();
        parser.push(b"GET /healthz HTTP/1.1\nHost: a\n\nGET /metrics HTTP/1.1\n\n");
        assert_eq!(parser.next_request().unwrap().unwrap().path, "/healthz");
        assert_eq!(parser.next_request().unwrap().unwrap().path, "/metrics");
        assert_eq!(parser.next_request().unwrap(), None);
    }

    #[test]
    fn partial_bytes_report_truncation_on_close() {
        let mut parser = RequestParser::new();
        assert_eq!(parser.closed(), HttpError::Closed);
        parser.push(b"GET /x HT");
        assert_eq!(parser.next_request().unwrap(), None);
        assert_eq!(
            parser.closed(),
            HttpError::BadRequest("connection closed inside headers")
        );
        let mut parser = RequestParser::new();
        parser.push(b"POST /x HTTP/1.1\r\nContent-Length: 8\r\n\r\nhalf");
        assert_eq!(parser.next_request().unwrap(), None);
        assert_eq!(
            parser.closed(),
            HttpError::BadRequest("body shorter than content-length")
        );
    }

    #[test]
    fn connection_header_negotiates_keep_alive() {
        let keep = parse(b"GET /x HTTP/1.1\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(keep.wants_keep_alive());
        let mixed = parse(b"GET /x HTTP/1.1\r\nConnection: TE, Keep-Alive\r\n\r\n").unwrap();
        assert!(mixed.wants_keep_alive());
        let close = parse(b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!close.wants_keep_alive());
        let none = parse(b"GET /x HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert!(!none.wants_keep_alive(), "keep-alive must be opt-in");
    }

    // ---- responses -------------------------------------------------------

    #[test]
    fn responses_serialize_with_framing() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\": true}")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 12\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\": true}"));

        let mut out = Vec::new();
        Response::error(400, "broke \"here\"")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("400 Bad Request"));
        assert!(text.contains("{\"error\": \"broke \\\"here\\\"\"}"));
    }

    #[test]
    fn keep_alive_responses_say_so() {
        let text = String::from_utf8(Response::json(200, "{}").to_bytes(true)).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        let text = String::from_utf8(Response::json(200, "{}").to_bytes(false)).unwrap();
        assert!(text.contains("Connection: close\r\n"), "{text}");
    }

    #[test]
    fn named_timeout_and_cap_responses_serialize() {
        // 408: the slowloris verdict.
        let text = String::from_utf8(Response::request_timeout().to_bytes(false)).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 408 Request Timeout\r\n"),
            "{text}"
        );
        assert!(text.contains("read deadline"), "{text}");
        // 503 at the connection cap carries the retry hint.
        let text = String::from_utf8(Response::connection_cap(3).to_bytes(false)).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 3\r\n"), "{text}");
        // 431: the oversized-head verdict, with its full reason phrase.
        let oversized = Response::error(
            HttpError::HeadersTooLarge.status(),
            &HttpError::HeadersTooLarge.to_string(),
        );
        let text = String::from_utf8(oversized.to_bytes(false)).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 431 Request Header Fields Too Large\r\n"),
            "{text}"
        );
    }

    #[test]
    fn retry_after_is_emitted_as_a_header() {
        let mut out = Vec::new();
        Response::error(503, "overloaded")
            .with_retry_after(2)
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"), "{text}");
        // The header block still terminates correctly before the body.
        assert!(text.contains("\r\n\r\n{\"error\""), "{text}");

        let mut out = Vec::new();
        Response::json(200, "{}").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(!text.contains("Retry-After"), "{text}");
    }
}
