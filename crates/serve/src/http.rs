//! Minimal HTTP/1.1 request reading and response writing.
//!
//! Hand-rolled over `std::io` in the same spirit as the workspace's other
//! wire formats: no external dependency, strict limits, and every failure
//! mapped to a clean 4xx. The server speaks a deliberately small subset —
//! one request per connection (`Connection: close` on every response),
//! `Content-Length` bodies only (chunked transfer encoding is rejected) —
//! which is all the batching front-end needs and keeps the attack surface
//! enumerable.

use std::fmt;
use std::io::{self, BufRead, Read, Write};

/// Upper bound on the request line plus all header bytes.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Upper bound on a request body (a sweep spec is a few hundred bytes; a
/// megabyte is already hostile).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Request target, e.g. `/simulate`. Query strings are not split off.
    pub path: String,
    /// Header name/value pairs in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The value of header `name` (ASCII case-insensitive), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The peer closed the connection before sending a request line — not a
    /// protocol error, just the end of the conversation.
    Closed,
    /// A malformed request line, header, or body framing problem.
    BadRequest(&'static str),
    /// The request line + headers exceeded [`MAX_HEADER_BYTES`].
    HeadersTooLarge,
    /// The declared body length exceeded [`MAX_BODY_BYTES`].
    BodyTooLarge,
    /// A method that carries a body arrived without `Content-Length`.
    LengthRequired,
    /// The underlying socket failed (timeout, reset, ...).
    Io(io::ErrorKind),
}

impl HttpError {
    /// The HTTP status code this error maps to.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Closed | HttpError::Io(_) => 400,
            HttpError::BadRequest(_) => 400,
            HttpError::HeadersTooLarge => 431,
            HttpError::BodyTooLarge => 413,
            HttpError::LengthRequired => 411,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::BadRequest(why) => write!(f, "bad request: {why}"),
            HttpError::HeadersTooLarge => {
                write!(f, "request headers exceed {MAX_HEADER_BYTES} bytes")
            }
            HttpError::BodyTooLarge => write!(f, "request body exceeds {MAX_BODY_BYTES} bytes"),
            HttpError::LengthRequired => write!(f, "content-length required"),
            HttpError::Io(kind) => write!(f, "i/o error: {kind:?}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e.kind())
    }
}

/// Reads one request from `reader`, enforcing the header and body limits.
///
/// # Errors
///
/// [`HttpError::Closed`] on a clean end-of-stream before any byte of a
/// request; any other variant describes a malformed or oversized request.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, HttpError> {
    let mut budget = MAX_HEADER_BYTES;
    let request_line = match read_line(reader, &mut budget)? {
        None => return Err(HttpError::Closed),
        Some(line) if line.is_empty() => return Err(HttpError::BadRequest("empty request line")),
        Some(line) => line,
    };

    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default();
    let path = parts
        .next()
        .ok_or(HttpError::BadRequest("request line is missing the target"))?;
    let version = parts
        .next()
        .ok_or(HttpError::BadRequest("request line is missing the version"))?;
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest("malformed request line"));
    }
    if method.is_empty() || !path.starts_with('/') {
        return Err(HttpError::BadRequest("malformed request target"));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, &mut budget)?
            .ok_or(HttpError::BadRequest("connection closed inside headers"))?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::BadRequest("header line without ':'"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadRequest("malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }

    let request = Request {
        method: method.to_owned(),
        path: path.to_owned(),
        headers,
        body: Vec::new(),
    };

    if request.header("transfer-encoding").is_some() {
        return Err(HttpError::BadRequest(
            "chunked transfer encoding is not supported",
        ));
    }

    let length = match request.header("content-length") {
        Some(value) => Some(
            value
                .parse::<usize>()
                .map_err(|_| HttpError::BadRequest("invalid content-length"))?,
        ),
        None => None,
    };
    let length = match (length, request.method.as_str()) {
        (Some(n), _) => n,
        (None, "POST" | "PUT" | "PATCH") => return Err(HttpError::LengthRequired),
        (None, _) => 0,
    };
    if length > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge);
    }

    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            HttpError::BadRequest("body shorter than content-length")
        } else {
            HttpError::Io(e.kind())
        }
    })?;
    Ok(Request { body, ..request })
}

/// Reads one CRLF-terminated line (bare LF tolerated), charging `budget`.
/// `Ok(None)` means end-of-stream before any byte.
fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> Result<Option<String>, HttpError> {
    let mut raw = Vec::new();
    // Cap the read itself, not just the accounting afterwards: a peer
    // streaming an endless header line must hit the limit, not our memory.
    let read = reader
        .take(*budget as u64 + 1)
        .read_until(b'\n', &mut raw)?;
    if read == 0 {
        return Ok(None);
    }
    if raw.last() != Some(&b'\n') {
        return Err(if raw.len() > *budget {
            HttpError::HeadersTooLarge
        } else {
            HttpError::BadRequest("truncated header line")
        });
    }
    *budget -= raw.len().min(*budget);
    raw.pop();
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw)
        .map(Some)
        .map_err(|_| HttpError::BadRequest("header line is not UTF-8"))
}

/// An outgoing response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes (always JSON in this server).
    pub body: String,
    /// When set, emitted as a `Retry-After: <seconds>` header — the
    /// load-shedding contract: a shed client learns *when* to come back
    /// instead of guessing.
    pub retry_after: Option<u64>,
}

impl Response {
    /// A JSON response with the given status.
    #[must_use]
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            body: body.into(),
            retry_after: None,
        }
    }

    /// Adds a `Retry-After: <seconds>` header to the response.
    #[must_use]
    pub fn with_retry_after(mut self, seconds: u64) -> Self {
        self.retry_after = Some(seconds);
        self
    }

    /// A JSON error response: `{"error": "<message>"}` with the message
    /// escaped.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Self {
        Response::json(
            status,
            format!("{{\"error\": \"{}\"}}\n", crate::json::escape(message)),
        )
    }

    /// Serializes the response (status line, `Content-Type`,
    /// `Content-Length`, `Connection: close`, body) to `writer`.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn write_to(&self, writer: &mut impl Write) -> io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            status_text(self.status),
            self.body.len()
        )?;
        if let Some(seconds) = self.retry_after {
            write!(writer, "Retry-After: {seconds}\r\n")?;
        }
        writer.write_all(b"\r\n")?;
        writer.write_all(self.body.as_bytes())?;
        writer.flush()
    }
}

/// The canonical reason phrase for the status codes this server emits.
#[must_use]
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(input: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(input))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse(b"POST /simulate HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/simulate");
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn parses_a_get_without_body_and_bare_lf() {
        let req = parse(b"GET /healthz HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn clean_eof_reads_as_closed() {
        assert_eq!(parse(b"").unwrap_err(), HttpError::Closed);
    }

    #[test]
    fn truncated_headers_are_rejected() {
        for truncated in [
            &b"GET /x HTTP/1.1"[..],           // EOF mid request line
            b"GET /x HTTP/1.1\r\nHost: x",     // EOF mid header
            b"GET /x HTTP/1.1\r\nHost: x\r\n", // EOF before blank line
        ] {
            let err = parse(truncated).unwrap_err();
            assert!(
                matches!(err, HttpError::BadRequest(_)),
                "{truncated:?} gave {err:?}"
            );
            assert_eq!(err.status(), 400);
        }
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        for bad in [
            &b"\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x\r\n\r\n",
            b"GET /x HTTP/2 extra\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET /x FTP/1.1\r\n\r\n",
        ] {
            let err = parse(bad).unwrap_err();
            assert!(
                matches!(err, HttpError::BadRequest(_)),
                "{bad:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn malformed_headers_are_rejected() {
        let err = parse(b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n").unwrap_err();
        assert_eq!(err, HttpError::BadRequest("header line without ':'"));
        let err = parse(b"GET /x HTTP/1.1\r\nbad name: v\r\n\r\n").unwrap_err();
        assert_eq!(err, HttpError::BadRequest("malformed header name"));
        let err = parse(b"GET /x HTTP/1.1\r\nHost: \xff\xfe\r\n\r\n").unwrap_err();
        assert_eq!(err, HttpError::BadRequest("header line is not UTF-8"));
    }

    #[test]
    fn bad_content_length_is_rejected() {
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n").unwrap_err();
        assert_eq!(err, HttpError::BadRequest("invalid content-length"));
        assert_eq!(err.status(), 400);
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: -1\r\n\r\n").unwrap_err();
        assert_eq!(err, HttpError::BadRequest("invalid content-length"));
    }

    #[test]
    fn missing_content_length_on_post_is_rejected() {
        let err = parse(b"POST /x HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(err, HttpError::LengthRequired);
        assert_eq!(err.status(), 411);
    }

    #[test]
    fn oversized_bodies_are_rejected_without_reading_them() {
        let request = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = parse(request.as_bytes()).unwrap_err();
        assert_eq!(err, HttpError::BodyTooLarge);
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn short_bodies_are_rejected() {
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nonly4").unwrap_err();
        assert_eq!(
            err,
            HttpError::BadRequest("body shorter than content-length")
        );
    }

    #[test]
    fn oversized_headers_are_rejected() {
        let huge = format!(
            "GET /x HTTP/1.1\r\nX-Fill: {}\r\n\r\n",
            "a".repeat(MAX_HEADER_BYTES)
        );
        let err = parse(huge.as_bytes()).unwrap_err();
        assert_eq!(err, HttpError::HeadersTooLarge);
        assert_eq!(err.status(), 431);
        // An endless single line (no terminator at all) must also hit the
        // limit rather than buffering forever.
        let endless = format!("GET /x{}", "a".repeat(MAX_HEADER_BYTES * 2));
        let err = parse(endless.as_bytes()).unwrap_err();
        assert_eq!(err, HttpError::HeadersTooLarge);
    }

    #[test]
    fn chunked_encoding_is_rejected() {
        let err = parse(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(
            err,
            HttpError::BadRequest("chunked transfer encoding is not supported")
        );
    }

    #[test]
    fn responses_serialize_with_framing() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\": true}")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 12\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\": true}"));

        let mut out = Vec::new();
        Response::error(400, "broke \"here\"")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("400 Bad Request"));
        assert!(text.contains("{\"error\": \"broke \\\"here\\\"\"}"));
    }

    #[test]
    fn retry_after_is_emitted_as_a_header() {
        let mut out = Vec::new();
        Response::error(503, "overloaded")
            .with_retry_after(2)
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"), "{text}");
        // The header block still terminates correctly before the body.
        assert!(text.contains("\r\n\r\n{\"error\""), "{text}");

        let mut out = Vec::new();
        Response::json(200, "{}").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(!text.contains("Retry-After"), "{text}");
    }
}
