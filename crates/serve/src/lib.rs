//! # sigcomp-serve
//!
//! A dependency-free concurrent simulation server: the significance-
//! compression models behind a long-running HTTP/1.1 + JSON service, so the
//! paper's energy/CPI numbers are an always-on queryable resource instead of
//! a batch CLI run.
//!
//! Everything is `std`-only, in the same spirit as the rest of the
//! workspace: a hand-rolled incremental HTTP parser ([`http`]), a
//! hand-rolled JSON parser ([`json`]), and a nonblocking event-loop
//! front door ([`reactor`]) — a fixed worker pool driving per-connection
//! state machines over `set_nonblocking` sockets, with HTTP/1.1
//! keep-alive, pipelining, per-connection read/write deadlines, and an
//! accept-gate connection cap that sheds overload with a fast `503`.
//!
//! The heart of the crate is the **batching scheduler** ([`batch`]):
//! concurrent connections enqueue jobs into one shared bounded queue; a
//! dispatcher drains it into batches, deduplicates identical configurations
//! by their content hash ([`sigcomp_explore::dedup_jobs`]), answers
//! repeats from a bounded in-memory memo and the shared on-disk
//! [`sigcomp_explore::ResultCache`], and places only the unique residue on
//! the configured [`sigcomp_explore::ExecBackend`] — the same pluggable
//! execution layer behind `repro sweep`, so the server can run its batches
//! on the in-process work-stealing pool or fan them out across sharded
//! `repro worker` subprocesses. A thousand clients asking for overlapping
//! configurations cost one simulation each, and every response is
//! bit-identical to a direct run (all counters are exact integers).
//!
//! # Example
//!
//! ```
//! use sigcomp_serve::{ServeConfig, Server};
//!
//! let server = Server::bind(ServeConfig {
//!     addr: "127.0.0.1:0".into(), // port 0: pick a free port
//!     ..ServeConfig::default()
//! })
//! .expect("bind")
//! .spawn();
//! println!("serving on http://{}", server.addr());
//! // POST {"workload": "rawcaudio"} to /simulate, then:
//! server.shutdown();
//! ```
//!
//! The CLI entry point is `repro serve` (see `sigcomp-bench`); an
//! end-to-end exercise lives in the workspace's `examples/load_gen.rs`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod api;
pub mod batch;
pub mod http;
pub mod json;
pub mod metrics;
pub mod reactor;
pub mod registry;
pub mod server;

pub use batch::{BatchConfig, BatchedResult, Batcher, SubmitError, DEFAULT_MEMO_CAPACITY};
pub use http::{read_request, HttpError, Request, RequestParser, Response};
pub use json::{Json, NumError};
pub use metrics::ServerMetrics;
pub use reactor::{Completion, Handler, Reactor, ReactorConfig};
pub use registry::{SweepRegistry, SweepState};
pub use server::{ServeConfig, ServeModel, Server, ServerHandle};
