//! The nonblocking reactor front door: an event loop over
//! `set_nonblocking` sockets with a fixed worker pool, HTTP/1.1 keep-alive
//! and pipelining, per-connection deadlines, and socket-layer admission
//! control.
//!
//! # Model
//!
//! A [`Reactor`] owns N worker threads. Accepted connections are admitted
//! through a connection cap (at the cap: fast `503` + `Retry-After`, the
//! batch queue's shed discipline extended to the socket layer) and assigned
//! round-robin. Each worker owns its connections outright — no cross-worker
//! locking on the request path — and drives every connection through a
//! small state machine:
//!
//! ```text
//! Reading ──parse──▶ Dispatched ──response──▶ Writing ──flush──▶ Reading (keep-alive)
//!    │                                            │
//!    └── deadline, partial bytes → 408 ───────────┴── close
//! ```
//!
//! *Reading* accumulates whatever fragments the kernel delivers into an
//! incremental [`RequestParser`] (requests may split at any byte boundary;
//! several pipelined requests may arrive in one read). *Dispatched* hands
//! the request to the [`Handler`] with a [`Completion`]; the handler either
//! answers inline (cheap routes) or completes later from its own threads
//! (simulation routes), waking the owning worker. *Writing* flushes the
//! response buffer as the socket drains. Pipelined requests are answered
//! strictly in order, one in flight at a time.
//!
//! Readiness without `epoll`: `std` exposes no portable readiness API, so
//! each worker polls its sockets with nonblocking reads and parks on a
//! condvar between passes — a brief spin for hot traffic, then
//! progressively longer parks bounded by the nearest connection deadline
//! (the timer-wheel role). New connections and handler completions notify
//! the condvar, so dispatch latency never waits out a park.
//!
//! Deadlines: a connection that sits past its read deadline with a partial
//! request buffered is answered `408 Request Timeout` and closed (slowloris
//! defense); an idle keep-alive connection with nothing buffered closes
//! silently. A stalled response write past the write deadline closes the
//! connection.
//!
//! Keep-alive is opt-in (`Connection: keep-alive` from the client *and*
//! [`ReactorConfig::keep_alive`] on): every pre-reactor client reads
//! responses to EOF and still sees `Connection: close` semantics.

use crate::http::{Request, RequestParser, Response};
use crate::metrics::ServerMetrics;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default [`ReactorConfig::max_conns`].
pub const DEFAULT_MAX_CONNS: usize = 1024;

/// Default [`ReactorConfig::read_deadline`]: generous for interactive
/// clients, hard enough that a slowloris costs one connection slot for ten
/// seconds, not forever.
pub const DEFAULT_READ_DEADLINE: Duration = Duration::from_secs(10);

/// Default [`ReactorConfig::write_deadline`].
pub const DEFAULT_WRITE_DEADLINE: Duration = Duration::from_secs(10);

/// Socket read granularity per `read` call.
const READ_CHUNK: usize = 16 * 1024;

/// Reads drained from one socket per pass before yielding to the worker's
/// other connections — bounds how long one firehose peer can hog a worker.
const MAX_READS_PER_PASS: usize = 4;

/// Cap on coalesced (unflushed) response bytes per connection: past this,
/// flush before answering more pipelined requests, bounding memory when a
/// client pipelines far ahead of its reads.
const MAX_COALESCED_BYTES: usize = 256 * 1024;

/// No-progress passes spent spinning (`yield_now`) before parking at all —
/// keeps a hot request/response ping-pong at memory latency.
const SPIN_PASSES: u32 = 64;

/// First parking tier: short naps while traffic is merely pausing.
const SHORT_PARK: Duration = Duration::from_micros(50);

/// Second parking tier after [`LONG_PARK_AFTER`] idle passes: the quiescent
/// server burns ~200 wakeups/s per worker instead of 20k.
const LONG_PARK: Duration = Duration::from_millis(5);
const LONG_PARK_AFTER: u32 = 256;

/// Reactor tuning. Zero-valued fields select the documented defaults.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Event-loop worker threads (0 = min(available parallelism, 4)).
    pub workers: usize,
    /// Connection cap enforced at accept time; above it new connections are
    /// shed with a fast `503` + `Retry-After` (0 = [`DEFAULT_MAX_CONNS`]).
    pub max_conns: usize,
    /// How long a connection may take to deliver a complete request before
    /// the 408/close verdict (zero = [`DEFAULT_READ_DEADLINE`]).
    pub read_deadline: Duration,
    /// How long a response write may stall before the connection is dropped
    /// (zero = [`DEFAULT_WRITE_DEADLINE`]).
    pub write_deadline: Duration,
    /// Honor client `Connection: keep-alive` requests. Off = every response
    /// closes, the pre-reactor behavior.
    pub keep_alive: bool,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            workers: 0,
            max_conns: 0,
            read_deadline: Duration::ZERO,
            write_deadline: Duration::ZERO,
            keep_alive: true,
        }
    }
}

impl ReactorConfig {
    fn effective_workers(&self) -> usize {
        if self.workers != 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map_or(2, std::num::NonZeroUsize::get)
            .clamp(1, 4)
    }

    fn effective_max_conns(&self) -> usize {
        if self.max_conns == 0 {
            DEFAULT_MAX_CONNS
        } else {
            self.max_conns
        }
    }

    fn effective_read_deadline(&self) -> Duration {
        if self.read_deadline.is_zero() {
            DEFAULT_READ_DEADLINE
        } else {
            self.read_deadline
        }
    }

    fn effective_write_deadline(&self) -> Duration {
        if self.write_deadline.is_zero() {
            DEFAULT_WRITE_DEADLINE
        } else {
            self.write_deadline
        }
    }
}

/// What the reactor calls with each parsed request. Implementations either
/// answer inline (`completion.send(response)` before returning) or move the
/// [`Completion`] to another thread and answer later — the reactor worker
/// never blocks either way.
pub trait Handler: Send + Sync + 'static {
    /// Handle one request; `completion` must eventually receive the
    /// response (a dropped completion leaks the connection until its
    /// deadline — don't).
    fn handle(&self, request: Request, completion: Completion);
}

/// Where a dispatched request's response lands.
#[derive(Debug, Default)]
struct ResponseSlot {
    response: Mutex<Option<Response>>,
}

/// Wakes a specific reactor worker out of its park.
#[derive(Debug, Clone)]
struct Waker {
    shared: Arc<WorkerShared>,
}

impl Waker {
    fn wake(&self) {
        let mut inbox = self.shared.inbox.lock().expect("reactor inbox poisoned");
        inbox.notified = true;
        drop(inbox);
        self.shared.wake.notify_one();
    }
}

/// The write end of one request's response: filled exactly once, from any
/// thread; filling it wakes the connection's owning worker.
#[derive(Debug)]
pub struct Completion {
    slot: Arc<ResponseSlot>,
    waker: Waker,
}

impl Completion {
    /// Delivers the response for the request this completion was issued
    /// for. Consumes the completion — one request, one response.
    pub fn send(self, response: Response) {
        *self.slot.response.lock().expect("response slot poisoned") = Some(response);
        self.waker.wake();
    }
}

/// Mailbox shared between the acceptor and one worker.
#[derive(Debug, Default)]
struct WorkerShared {
    inbox: Mutex<Inbox>,
    wake: Condvar,
}

#[derive(Debug, Default)]
struct Inbox {
    conns: Vec<TcpStream>,
    notified: bool,
}

/// The running event loop: worker threads + the admission gate.
///
/// [`Reactor::accept`] feeds it connections (typically from a blocking
/// accept loop); [`Reactor::shutdown`] stops the workers and closes every
/// connection.
#[derive(Debug)]
pub struct Reactor {
    workers: Vec<Arc<WorkerShared>>,
    threads: Vec<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    metrics: Arc<ServerMetrics>,
    max_conns: usize,
    next_worker: usize,
}

impl Reactor {
    /// Starts the worker pool. Connections arrive via [`Reactor::accept`].
    #[must_use]
    pub fn start(
        config: &ReactorConfig,
        handler: Arc<dyn Handler>,
        metrics: Arc<ServerMetrics>,
    ) -> Reactor {
        let stop = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::new();
        let mut threads = Vec::new();
        for i in 0..config.effective_workers() {
            let shared = Arc::new(WorkerShared::default());
            let mut worker = Worker {
                shared: Arc::clone(&shared),
                handler: Arc::clone(&handler),
                metrics: Arc::clone(&metrics),
                stop: Arc::clone(&stop),
                read_deadline: config.effective_read_deadline(),
                write_deadline: config.effective_write_deadline(),
                keep_alive: config.keep_alive,
                conns: Vec::new(),
            };
            let thread = std::thread::Builder::new()
                .name(format!("sigcomp-reactor-{i}"))
                .spawn(move || worker.run())
                .expect("spawning a reactor worker");
            workers.push(shared);
            threads.push(thread);
        }
        Reactor {
            workers,
            threads,
            stop,
            metrics,
            max_conns: config.effective_max_conns(),
            next_worker: 0,
        }
    }

    /// Admits one accepted connection: at the connection cap it is shed
    /// with a fast `503` + `Retry-After: 1` and closed; below the cap it is
    /// switched to nonblocking and handed to the next worker round-robin.
    pub fn accept(&mut self, stream: TcpStream) {
        let open = self.metrics.conns_open.fetch_add(1, Ordering::Relaxed);
        if open as usize >= self.max_conns {
            self.metrics.conns_open.fetch_sub(1, Ordering::Relaxed);
            ServerMetrics::incr(&self.metrics.conns_shed);
            // Best-effort shed notice on the still-blocking socket; a fresh
            // socket's send buffer is empty, so this cannot stall the
            // acceptor meaningfully.
            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
            let mut stream = stream;
            let _ = stream.write_all(&Response::connection_cap(1).to_bytes(false));
            return;
        }
        ServerMetrics::incr(&self.metrics.conns_accepted);
        if stream.set_nonblocking(true).is_err() {
            self.metrics.conns_open.fetch_sub(1, Ordering::Relaxed);
            return;
        }
        let _ = stream.set_nodelay(true);
        let shared = &self.workers[self.next_worker % self.workers.len()];
        self.next_worker = self.next_worker.wrapping_add(1);
        {
            let mut inbox = shared.inbox.lock().expect("reactor inbox poisoned");
            inbox.conns.push(stream);
            inbox.notified = true;
        }
        shared.wake.notify_one();
    }

    /// Stops every worker, closing all connections, and joins the threads.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for shared in &self.workers {
            let mut inbox = shared.inbox.lock().expect("reactor inbox poisoned");
            inbox.notified = true;
            drop(inbox);
            shared.wake.notify_one();
        }
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Per-connection state machine phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Accumulating request bytes (includes parsing: every read drains the
    /// parser immediately).
    Reading,
    /// A request is with the handler; waiting for its [`Completion`].
    Dispatched,
    /// Flushing a serialized response.
    Writing,
}

/// What advancing a connection decided about its future.
enum Fate {
    Keep,
    Close,
}

struct Conn {
    stream: TcpStream,
    state: State,
    parser: RequestParser,
    /// Parsed-but-unanswered pipelined requests, served strictly in order.
    pending: VecDeque<Request>,
    /// Deferred parse error: emitted (then close) only after every request
    /// parsed *before* the framing broke has been answered.
    parse_error: Option<Response>,
    slot: Option<Arc<ResponseSlot>>,
    out: Vec<u8>,
    written: usize,
    /// Whether the connection stays open after the current response.
    keep_alive_after_write: bool,
    /// Keep-alive decision for the currently dispatched request.
    cur_keep_alive: bool,
    /// Peer sent EOF; close once the pipeline drains.
    eof: bool,
    deadline: Instant,
    req_started: Instant,
    /// Responses fully served on this connection.
    served: u64,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant, read_deadline: Duration) -> Conn {
        Conn {
            stream,
            state: State::Reading,
            parser: RequestParser::new(),
            pending: VecDeque::new(),
            parse_error: None,
            slot: None,
            out: Vec::new(),
            written: 0,
            keep_alive_after_write: false,
            cur_keep_alive: false,
            eof: false,
            deadline: now + read_deadline,
            req_started: now,
            served: 0,
        }
    }
}

struct Worker {
    shared: Arc<WorkerShared>,
    handler: Arc<dyn Handler>,
    metrics: Arc<ServerMetrics>,
    stop: Arc<AtomicBool>,
    read_deadline: Duration,
    write_deadline: Duration,
    keep_alive: bool,
    conns: Vec<Conn>,
}

impl Worker {
    fn run(&mut self) {
        let mut idle_passes: u32 = 0;
        loop {
            if self.stop.load(Ordering::SeqCst) {
                let dropped = self.conns.len() as u64;
                self.conns.clear();
                self.metrics
                    .conns_open
                    .fetch_sub(dropped, Ordering::Relaxed);
                return;
            }
            self.drain_inbox();
            let now = Instant::now();
            let mut progress = false;
            let mut i = 0;
            while i < self.conns.len() {
                let (made_progress, fate) = self.advance(i, now);
                progress |= made_progress;
                match fate {
                    Fate::Keep => i += 1,
                    Fate::Close => {
                        self.conns.swap_remove(i);
                        self.metrics.conns_open.fetch_sub(1, Ordering::Relaxed);
                        progress = true;
                    }
                }
            }
            if progress {
                idle_passes = 0;
                continue;
            }
            idle_passes = idle_passes.saturating_add(1);
            if idle_passes < SPIN_PASSES {
                std::thread::yield_now();
                continue;
            }
            let park = if idle_passes < LONG_PARK_AFTER {
                SHORT_PARK
            } else {
                LONG_PARK
            };
            // The timer-wheel bound: never park past the nearest deadline.
            let now = Instant::now();
            let until_deadline = self
                .conns
                .iter()
                .filter(|c| c.state != State::Dispatched)
                .map(|c| c.deadline.saturating_duration_since(now))
                .min();
            let timeout =
                until_deadline.map_or(park, |d| d.min(park).max(Duration::from_micros(10)));
            let mut inbox = self.shared.inbox.lock().expect("reactor inbox poisoned");
            if !inbox.notified {
                let (guard, _) = self
                    .shared
                    .wake
                    .wait_timeout(inbox, timeout)
                    .expect("reactor inbox poisoned");
                inbox = guard;
            }
            inbox.notified = false;
        }
    }

    fn drain_inbox(&mut self) {
        let mut fresh = {
            let mut inbox = self.shared.inbox.lock().expect("reactor inbox poisoned");
            std::mem::take(&mut inbox.conns)
        };
        if fresh.is_empty() {
            return;
        }
        let now = Instant::now();
        for stream in fresh.drain(..) {
            self.conns.push(Conn::new(stream, now, self.read_deadline));
        }
    }

    /// Runs one connection's state machine as far as it will go without
    /// blocking. Returns whether any progress happened and the
    /// connection's fate.
    fn advance(&mut self, idx: usize, now: Instant) -> (bool, Fate) {
        let mut progress = false;
        loop {
            let state = self.conns[idx].state;
            let step = match state {
                State::Reading => self.step_read(idx, now),
                State::Dispatched => self.step_dispatched(idx, now),
                State::Writing => self.step_write(idx, now),
            };
            match step {
                Step::Progress => progress = true,
                Step::Stuck => return (progress, Fate::Keep),
                Step::Close => return (true, Fate::Close),
            }
        }
    }

    /// Reading: drain the socket into the parser, the parser into the
    /// pending queue, and dispatch the next request if one is ready.
    fn step_read(&mut self, idx: usize, now: Instant) -> Step {
        let conn = &mut self.conns[idx];
        let mut buf = [0u8; READ_CHUNK];
        let mut read_any = false;
        if !conn.eof {
            for _ in 0..MAX_READS_PER_PASS {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conn.eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.parser.push(&buf[..n]);
                        read_any = true;
                        if n < buf.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return Step::Close,
                }
            }
        }
        if read_any {
            // Fresh bytes on an idle connection restart the request clock.
            conn.deadline = now + self.read_deadline;
        }
        // Drain complete requests (possibly several, pipelined).
        if conn.parse_error.is_none() {
            loop {
                match conn.parser.next_request() {
                    Ok(Some(request)) => conn.pending.push_back(request),
                    Ok(None) => break,
                    Err(e) => {
                        conn.parse_error = Some(Response::error(e.status(), &e.to_string()));
                        break;
                    }
                }
            }
        }
        if let Some(request) = conn.pending.pop_front() {
            return self.dispatch(idx, request, now);
        }
        let conn = &mut self.conns[idx];
        if let Some(error) = conn.parse_error.take() {
            return self.queue_response(idx, &error, false, now);
        }
        if conn.eof {
            if conn.parser.buffered() == 0 {
                // Clean close between requests: nothing to answer.
                return Step::Close;
            }
            // Truncated mid-request: name what broke, then close.
            let error = conn.parser.closed();
            let response = Response::error(error.status(), &error.to_string());
            return self.queue_response(idx, &response, false, now);
        }
        if now >= conn.deadline {
            if conn.parser.buffered() == 0 {
                // Idle keep-alive (or silent) connection: close without
                // ceremony — there is no request to answer.
                return Step::Close;
            }
            // The slowloris shape: bytes trickled in but no complete
            // request by the deadline.
            ServerMetrics::incr(&self.metrics.request_timeouts);
            return self.queue_response(idx, &Response::request_timeout(), false, now);
        }
        if read_any {
            Step::Progress
        } else {
            Step::Stuck
        }
    }

    /// Hands one request to the handler and parks the connection in
    /// `Dispatched` until the completion lands.
    fn dispatch(&mut self, idx: usize, request: Request, now: Instant) -> Step {
        let conn = &mut self.conns[idx];
        if conn.served > 0 {
            ServerMetrics::incr(&self.metrics.keepalive_reuses);
        }
        conn.cur_keep_alive = self.keep_alive && request.wants_keep_alive();
        conn.req_started = now;
        let slot = Arc::new(ResponseSlot::default());
        conn.slot = Some(Arc::clone(&slot));
        conn.state = State::Dispatched;
        let completion = Completion {
            slot,
            waker: Waker {
                shared: Arc::clone(&self.shared),
            },
        };
        self.handler.handle(request, completion);
        Step::Progress
    }

    /// Dispatched: poll the completion slot; no deadline — simulations may
    /// legitimately take a long time.
    fn step_dispatched(&mut self, idx: usize, now: Instant) -> Step {
        let response = {
            let conn = &self.conns[idx];
            let slot = conn.slot.as_ref().expect("dispatched without a slot");
            slot.response.lock().expect("response slot poisoned").take()
        };
        let Some(response) = response else {
            // While a slow handler runs, flush any pipelined responses
            // already queued so earlier requests are not held hostage.
            return self.flush_best_effort(idx);
        };
        let keep_alive = {
            let conn = &mut self.conns[idx];
            conn.slot = None;
            conn.cur_keep_alive && !conn.eof
        };
        self.queue_response(idx, &response, keep_alive, now)
    }

    /// Best-effort flush of coalesced output while the connection is
    /// otherwise parked (e.g. waiting on a slow dispatched handler).
    /// Never blocks; `WouldBlock` just leaves the rest for later.
    fn flush_best_effort(&mut self, idx: usize) -> Step {
        let conn = &mut self.conns[idx];
        while conn.written < conn.out.len() {
            match conn.stream.write(&conn.out[conn.written..]) {
                Ok(0) => return Step::Close,
                Ok(n) => conn.written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Step::Close,
            }
        }
        if conn.written == conn.out.len() && !conn.out.is_empty() {
            conn.out.clear();
            conn.written = 0;
        }
        Step::Stuck
    }

    /// Serializes a response into the connection's output buffer. The
    /// buffer *appends*: pipelined responses coalesce and flush together in
    /// [`Worker::step_write`] — one syscall (and, with `TCP_NODELAY`, one
    /// packet) for a whole batch instead of one per response. Latency is
    /// observed here, when the response is ready, so coalesced responses
    /// are each charged their own handling time.
    fn queue_response(
        &mut self,
        idx: usize,
        response: &Response,
        keep_alive: bool,
        now: Instant,
    ) -> Step {
        ServerMetrics::incr(&self.metrics.http_requests);
        match response.status {
            200..=299 => ServerMetrics::incr(&self.metrics.http_2xx),
            400..=499 => ServerMetrics::incr(&self.metrics.http_4xx),
            _ => ServerMetrics::incr(&self.metrics.http_5xx),
        }
        let conn = &mut self.conns[idx];
        conn.out.extend_from_slice(&response.to_bytes(keep_alive));
        conn.keep_alive_after_write = keep_alive;
        conn.deadline = now + self.write_deadline;
        conn.state = State::Writing;
        self.metrics.observe_latency(conn.req_started.elapsed());
        conn.served += 1;
        Step::Progress
    }

    /// Writing: answer every already-parsed pipelined request first (their
    /// responses coalesce into the output buffer), then flush as much as
    /// the socket accepts.
    fn step_write(&mut self, idx: usize, now: Instant) -> Step {
        {
            let conn = &mut self.conns[idx];
            if conn.keep_alive_after_write && !conn.eof && conn.out.len() < MAX_COALESCED_BYTES {
                if let Some(request) = conn.pending.pop_front() {
                    return self.dispatch(idx, request, now);
                }
            }
        }
        let conn = &mut self.conns[idx];
        while conn.written < conn.out.len() {
            match conn.stream.write(&conn.out[conn.written..]) {
                Ok(0) => return Step::Close,
                Ok(n) => conn.written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if now >= conn.deadline {
                        ServerMetrics::incr(&self.metrics.write_timeouts);
                        return Step::Close;
                    }
                    return Step::Stuck;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Step::Close,
            }
        }
        let _ = conn.stream.flush();
        conn.out.clear();
        conn.written = 0;
        if !conn.keep_alive_after_write {
            return Step::Close;
        }
        conn.state = State::Reading;
        conn.deadline = now + self.read_deadline;
        Step::Progress
    }
}

enum Step {
    /// The state machine moved; run it again.
    Progress,
    /// Nothing to do until the socket or a completion wakes us.
    Stuck,
    /// The connection is done (or broken): drop it.
    Close,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::{TcpListener, TcpStream};

    /// A handler that answers every request inline with its path.
    struct Echo;
    impl Handler for Echo {
        fn handle(&self, request: Request, completion: Completion) {
            completion.send(Response::json(
                200,
                format!("{{\"path\": \"{}\"}}\n", request.path),
            ));
        }
    }

    /// Reads one Content-Length-framed response off a keep-alive stream.
    fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, String) {
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line.split(' ').nth(1).unwrap().parse().unwrap();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap();
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        (status, String::from_utf8(body).unwrap())
    }

    #[test]
    fn keep_alive_and_pipelining_serve_in_order_on_one_connection() {
        let config = ReactorConfig::default();
        let metrics = Arc::new(ServerMetrics::default());
        let mut reactor = Reactor::start(&config, Arc::new(Echo), Arc::clone(&metrics));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        reactor.accept(server_side);

        let mut writer = client.try_clone().unwrap();
        // Two pipelined requests in a single segment, then a third alone.
        writer
            .write_all(
                b"GET /a HTTP/1.1\r\nConnection: keep-alive\r\n\r\n\
                  GET /b HTTP/1.1\r\nConnection: keep-alive\r\n\r\n",
            )
            .unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        assert_eq!(
            read_response(&mut reader),
            (200, "{\"path\": \"/a\"}\n".into())
        );
        assert_eq!(
            read_response(&mut reader),
            (200, "{\"path\": \"/b\"}\n".into())
        );
        writer
            .write_all(b"GET /c HTTP/1.1\r\nConnection: keep-alive\r\n\r\n")
            .unwrap();
        assert_eq!(
            read_response(&mut reader),
            (200, "{\"path\": \"/c\"}\n".into())
        );
        assert_eq!(metrics.conns_accepted.load(Ordering::Relaxed), 1);
        assert!(metrics.keepalive_reuses.load(Ordering::Relaxed) >= 2);
        reactor.shutdown();
    }

    #[test]
    fn slow_partial_requests_get_408_and_a_close() {
        let config = ReactorConfig {
            read_deadline: Duration::from_millis(80),
            ..ReactorConfig::default()
        };
        let metrics = Arc::new(ServerMetrics::default());
        let mut reactor = Reactor::start(&config, Arc::new(Echo), Arc::clone(&metrics));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        reactor.accept(server_side);

        let mut writer = client.try_clone().unwrap();
        writer.write_all(b"GET /slow HTT").unwrap(); // never finishes
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let (status, body) = read_response(&mut reader);
        assert_eq!(status, 408, "{body}");
        // ... and the connection is closed afterwards.
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
        assert_eq!(metrics.request_timeouts.load(Ordering::Relaxed), 1);
        reactor.shutdown();
    }

    #[test]
    fn connections_over_the_cap_are_shed_with_503() {
        let config = ReactorConfig {
            max_conns: 1,
            ..ReactorConfig::default()
        };
        let metrics = Arc::new(ServerMetrics::default());
        let mut reactor = Reactor::start(&config, Arc::new(Echo), Arc::clone(&metrics));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        let held = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        reactor.accept(server_side);

        let shed = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        reactor.accept(server_side);
        let mut reader = BufReader::new(shed);
        let (status, body) = read_response(&mut reader);
        assert_eq!(status, 503, "{body}");
        assert_eq!(metrics.conns_shed.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.conns_accepted.load(Ordering::Relaxed), 1);
        drop(held);
        reactor.shutdown();
    }
}
