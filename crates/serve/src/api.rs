//! Wire formats: decoding request bodies into job and sweep specifications,
//! and encoding result documents.
//!
//! Decoding is strict — unknown fields, unknown axis values and
//! wrongly-typed values are all rejected with a message naming the culprit —
//! so a typo in a client request becomes a 400 with an explanation instead
//! of a silently-default simulation. Everything a spec needs is validated
//! here, which is what lets the batcher promise its simulation calls cannot
//! panic on bad input.
//!
//! These codecs also run on the server's hottest path: the reactor decodes
//! `/simulate` bodies *inline on its event-loop workers* to answer memoized
//! repeats without a thread handoff, so everything in this module must stay
//! pure string work — no I/O, no locks, no unbounded recursion.

use crate::batch::BatchedResult;
use crate::json::{escape, Json};
use sigcomp::{ExtScheme, ProcessNode};
use sigcomp_explore::{
    column_slug, config_points, pareto_frontier, to_json, JobOutcome, JobSpec, MemProfile,
    SweepSpec,
};
use sigcomp_pipeline::OrgKind;
use sigcomp_workloads::{suite_names, WorkloadSize};
use std::fmt::Write as _;

/// Decodes a `POST /simulate` body into a [`JobSpec`] plus the process-node
/// energy model the response should be evaluated under.
///
/// Only `workload` is required; the remaining axes default to the paper's
/// flagship configuration (`scheme` `3bit`, `org` `byte-serial`, `mem`
/// `paper`, `size` `default`, `energy_model` `paper-180nm` — the dynamic-
/// only accounting). The energy model is pure post-processing: it changes
/// the derived savings figures in the response, never the simulation (or
/// its cache identity).
///
/// # Errors
///
/// A human-readable message naming the offending field or value.
pub fn job_spec_from_json(doc: &Json) -> Result<(JobSpec, ProcessNode), String> {
    if !matches!(doc, Json::Obj(_)) {
        return Err("request body must be a JSON object".to_owned());
    }
    check_fields(
        doc,
        &["workload", "size", "scheme", "org", "mem", "energy_model"],
    )?;
    let workload = required_str(doc, "workload")?;
    let workload = resolve_workload(workload)?;
    let node = parse_energy_model(doc)?;
    let spec = JobSpec {
        scheme: parse_field(doc, "scheme", "3bit", ExtScheme::parse, "extension scheme")?,
        org: parse_field(doc, "org", "byte-serial", OrgKind::parse, "organization")?,
        workload,
        size: parse_field(doc, "size", "default", WorkloadSize::parse, "workload size")?,
        mem: parse_field(doc, "mem", "paper", MemProfile::parse, "memory profile")?,
        // The HTTP surface names built-in kernels only; recorded traces are
        // a CLI/sweep axis (they would need an upload channel here).
        source: sigcomp_explore::TraceSource::Kernel,
    };
    Ok((spec, node))
}

fn parse_energy_model(doc: &Json) -> Result<ProcessNode, String> {
    parse_field(
        doc,
        "energy_model",
        ProcessNode::Paper180nm.id(),
        ProcessNode::parse,
        "energy model",
    )
    .map_err(|e| {
        if e.starts_with("unknown energy model") {
            let known: Vec<&str> = ProcessNode::ALL.iter().map(|n| n.id()).collect();
            format!("{e} (known: {})", known.join(", "))
        } else {
            e
        }
    })
}

/// Decodes a `POST /sweep` body into a [`SweepSpec`] plus the `sync` flag.
///
/// Every axis is an optional array of strings; the defaults are the paper's
/// primary slice (scheme `3bit`, every organization, the full workload
/// suite, size `default`, the paper memory hierarchy). An optional
/// `energy_model` string selects the process-node preset the result's
/// frontier and savings are evaluated under (default `paper-180nm`; pure
/// post-processing, so it never changes which jobs run or their cache
/// identities). `"sync": true` asks for the result inline instead of a poll
/// ticket.
///
/// # Errors
///
/// A human-readable message naming the offending field or value.
pub fn sweep_spec_from_json(doc: &Json) -> Result<(SweepSpec, bool), String> {
    if !matches!(doc, Json::Obj(_)) {
        return Err("request body must be a JSON object".to_owned());
    }
    check_fields(
        doc,
        &[
            "workloads",
            "schemes",
            "orgs",
            "mems",
            "sizes",
            "energy_model",
            "sync",
        ],
    )?;
    let mut spec = SweepSpec::paper(WorkloadSize::Default);
    spec = spec.energy_models(&[parse_energy_model(doc)?]);
    if let Some(items) = axis_items(doc, "schemes")? {
        spec = spec.schemes(&parse_axis(&items, ExtScheme::parse, "extension scheme")?);
    }
    if let Some(items) = axis_items(doc, "orgs")? {
        spec = spec.orgs(&parse_axis(&items, OrgKind::parse, "organization")?);
    }
    if let Some(items) = axis_items(doc, "mems")? {
        spec = spec.mems(&parse_axis(&items, MemProfile::parse, "memory profile")?);
    }
    if let Some(items) = axis_items(doc, "sizes")? {
        spec = spec.sizes(&parse_axis(&items, WorkloadSize::parse, "workload size")?);
    }
    if let Some(items) = axis_items(doc, "workloads")? {
        let resolved: Vec<&'static str> = items
            .iter()
            .map(|name| resolve_workload(name))
            .collect::<Result<_, _>>()?;
        spec = spec.workloads(&resolved);
    }
    if spec.is_empty() {
        return Err("the requested design space is empty".to_owned());
    }
    let sync = match doc.get("sync") {
        None => false,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| "field 'sync' must be a boolean".to_owned())?,
    };
    Ok((spec, sync))
}

/// Encodes a `POST /simulate` response: the job's identity, every integer
/// counter, the derived CPI/energy-saving figures under the requested
/// energy model (named in `energy_model`; a leaky preset adds
/// `total_energy_saving` and `leakage_saving`), and the per-stage activity
/// including the gated-byte-cycle occupancy — bit-exact integers
/// throughout, so clients can compare responses across replicas.
#[must_use]
pub fn simulate_response(spec: &JobSpec, result: &BatchedResult, node: ProcessNode) -> String {
    let outcome = JobOutcome {
        spec: *spec,
        metrics: result.metrics,
        from_cache: result.from_cache,
    };
    let model = node.model();
    let m = &outcome.metrics;
    let mut out = String::with_capacity(1024);
    let _ = write!(
        out,
        "{{\"job_id\": \"{:016x}\", \"workload\": \"{}\", \"size\": \"{}\", \
         \"scheme\": \"{}\", \"org\": \"{}\", \"mem\": \"{}\", \
         \"energy_model\": \"{}\", \"from_cache\": {}, \
         \"instructions\": {}, \"cycles\": {}, \"branches\": {}, \
         \"stall_structural\": {}, \"stall_data_hazard\": {}, \"stall_control\": {}, \
         \"cpi\": {}, \"energy_saving\": {:.6}",
        spec.job_id(),
        spec.workload,
        spec.size.name(),
        spec.scheme.id(),
        spec.org.id(),
        spec.mem.id(),
        node.id(),
        outcome.from_cache,
        m.instructions,
        m.cycles,
        m.branches,
        m.stall_structural,
        m.stall_data_hazard,
        m.stall_control,
        json_cpi(outcome.cpi()),
        outcome.dynamic_energy_saving(&model),
    );
    if model.has_leakage() {
        let _ = write!(
            out,
            ", \"total_energy_saving\": {:.6}, \"leakage_saving\": {:.6}",
            outcome.energy_saving(&model),
            outcome.leakage_saving(&model),
        );
    }
    out.push_str(", \"activity\": {");
    for (i, (name, stage)) in m.activity.columns().iter().enumerate() {
        let _ = write!(
            out,
            "{}\"{}\": {{\"compressed\": {}, \"baseline\": {}, \
             \"gated_byte_cycles\": {}, \"total_byte_cycles\": {}}}",
            if i > 0 { ", " } else { "" },
            column_slug(name),
            stage.compressed_bits,
            stage.baseline_bits,
            stage.gated_byte_cycles,
            stage.total_byte_cycles,
        );
    }
    out.push_str("}}\n");
    out
}

/// Encodes a finished sweep: job count, cache statistics, the energy model
/// the figures were evaluated under, the Pareto frontier labels, and the
/// full per-job outcome array (the same document `repro sweep --json`
/// writes).
#[must_use]
pub fn sweep_result_json(outcomes: &[JobOutcome], node: ProcessNode) -> String {
    let model = node.model();
    let served_from_cache = outcomes.iter().filter(|o| o.from_cache).count();
    let points = config_points(outcomes);
    let frontier = pareto_frontier(&points, &model);
    let labels: Vec<String> = frontier
        .iter()
        .map(|p| format!("\"{}\"", escape(&p.label())))
        .collect();
    format!(
        "{{\"status\": \"done\", \"jobs\": {}, \"served_from_cache\": {}, \
         \"energy_model\": \"{}\", \"frontier\": [{}], \"outcomes\": {}}}\n",
        outcomes.len(),
        served_from_cache,
        node.id(),
        labels.join(", "),
        to_json(outcomes, &model).trim_end(),
    )
}

/// Formats a CPI figure as a JSON value: `inf` is not a JSON number, so the
/// infinite CPI of a zero-instruction job becomes `null` (built-in kernels
/// always retire instructions; this guards the invariant, not a live path).
fn json_cpi(cpi: f64) -> String {
    if cpi.is_finite() {
        format!("{cpi:.6}")
    } else {
        "null".to_owned()
    }
}

fn check_fields(doc: &Json, allowed: &[&str]) -> Result<(), String> {
    for key in doc.keys() {
        if !allowed.contains(&key) {
            return Err(format!(
                "unknown field '{key}' (expected one of: {})",
                allowed.join(", ")
            ));
        }
    }
    Ok(())
}

fn required_str<'a>(doc: &'a Json, field: &str) -> Result<&'a str, String> {
    doc.get(field)
        .ok_or_else(|| format!("missing required field '{field}'"))?
        .as_str()
        .ok_or_else(|| format!("field '{field}' must be a string"))
}

fn resolve_workload(name: &str) -> Result<&'static str, String> {
    suite_names()
        .iter()
        .find(|&&n| n == name)
        .copied()
        .ok_or_else(|| {
            format!(
                "unknown workload '{name}' (known: {})",
                suite_names().join(", ")
            )
        })
}

fn parse_field<T>(
    doc: &Json,
    field: &str,
    default: &str,
    parse: impl Fn(&str) -> Option<T>,
    what: &str,
) -> Result<T, String> {
    let value = match doc.get(field) {
        None => default,
        Some(v) => v
            .as_str()
            .ok_or_else(|| format!("field '{field}' must be a string"))?,
    };
    parse(value).ok_or_else(|| format!("unknown {what} '{value}'"))
}

fn axis_items<'a>(doc: &'a Json, field: &str) -> Result<Option<Vec<&'a str>>, String> {
    match doc.get(field) {
        None => Ok(None),
        Some(v) => v
            .str_items()
            .map(Some)
            .ok_or_else(|| format!("field '{field}' must be an array of strings")),
    }
}

fn parse_axis<T>(
    items: &[&str],
    parse: impl Fn(&str) -> Option<T>,
    what: &str,
) -> Result<Vec<T>, String> {
    items
        .iter()
        .map(|&item| parse(item).ok_or_else(|| format!("unknown {what} '{item}'")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigcomp_explore::JobMetrics;

    #[test]
    fn job_spec_defaults_and_overrides() {
        let doc = Json::parse(r#"{"workload": "rawcaudio"}"#).unwrap();
        let (spec, node) = job_spec_from_json(&doc).unwrap();
        assert_eq!(spec.workload, "rawcaudio");
        assert_eq!(spec.scheme, ExtScheme::ThreeBit);
        assert_eq!(spec.org, OrgKind::ByteSerial);
        assert_eq!(spec.size, WorkloadSize::Default);
        assert_eq!(spec.mem, MemProfile::Paper);
        assert_eq!(node, ProcessNode::Paper180nm);

        let doc = Json::parse(
            r#"{"workload": "pgp", "size": "tiny", "scheme": "halfword",
                "org": "baseline32", "mem": "slow-memory",
                "energy_model": "modern-7nm"}"#,
        )
        .unwrap();
        let (spec, node) = job_spec_from_json(&doc).unwrap();
        assert_eq!(spec.scheme, ExtScheme::Halfword);
        assert_eq!(spec.org, OrgKind::Baseline32);
        assert_eq!(spec.size, WorkloadSize::Tiny);
        assert_eq!(spec.mem, MemProfile::SlowMemory);
        assert_eq!(node, ProcessNode::Modern7nm);
    }

    #[test]
    fn job_spec_rejects_bad_input_with_named_culprits() {
        for (body, needle) in [
            (r"[1]", "must be a JSON object"),
            (r"{}", "missing required field 'workload'"),
            (r#"{"workload": 3}"#, "field 'workload' must be a string"),
            (r#"{"workload": "nope"}"#, "unknown workload 'nope'"),
            (
                r#"{"workload": "pgp", "org": "x"}"#,
                "unknown organization 'x'",
            ),
            (r#"{"workload": "pgp", "typo": 1}"#, "unknown field 'typo'"),
            (
                r#"{"workload": "pgp", "size": "huge"}"#,
                "unknown workload size 'huge'",
            ),
            (
                r#"{"workload": "pgp", "energy_model": "3nm"}"#,
                "unknown energy model '3nm' (known: paper-180nm, generic-45nm, modern-7nm)",
            ),
            (
                r#"{"workload": "pgp", "energy_model": 7}"#,
                "field 'energy_model' must be a string",
            ),
        ] {
            let doc = Json::parse(body).unwrap();
            let err = job_spec_from_json(&doc).unwrap_err();
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn sweep_spec_defaults_to_the_paper_slice() {
        let doc = Json::parse(r"{}").unwrap();
        let (spec, sync) = sweep_spec_from_json(&doc).unwrap();
        assert!(!sync);
        assert_eq!(spec.len(), OrgKind::ALL.len() * suite_names().len());
        assert_eq!(spec.energy_model_axis(), &[ProcessNode::Paper180nm]);
    }

    #[test]
    fn sweep_spec_carries_the_requested_energy_model_without_multiplying_jobs() {
        let doc = Json::parse(
            r#"{"workloads": ["rawcaudio"], "orgs": ["baseline32"],
                "energy_model": "generic-45nm"}"#,
        )
        .unwrap();
        let (spec, _) = sweep_spec_from_json(&doc).unwrap();
        assert_eq!(spec.energy_model_axis(), &[ProcessNode::Generic45nm]);
        assert_eq!(spec.len(), 1, "the model axis must not multiply jobs");

        let doc = Json::parse(r#"{"energy_model": "3nm"}"#).unwrap();
        let err = sweep_spec_from_json(&doc).unwrap_err();
        assert!(err.contains("unknown energy model '3nm'"), "{err}");
    }

    #[test]
    fn sweep_spec_applies_every_axis() {
        let doc = Json::parse(
            r#"{"workloads": ["rawcaudio", "pgp"], "schemes": ["2bit", "3bit"],
                "orgs": ["baseline32"], "mems": ["paper", "wide-l2"],
                "sizes": ["tiny"], "sync": true}"#,
        )
        .unwrap();
        let (spec, sync) = sweep_spec_from_json(&doc).unwrap();
        assert!(sync);
        // 2 workloads × 2 schemes × 1 org × 2 mems × 1 size.
        assert_eq!(spec.len(), 8);
    }

    #[test]
    fn sweep_spec_rejects_bad_axes() {
        for (body, needle) in [
            (r#"{"orgs": "baseline32"}"#, "must be an array of strings"),
            (r#"{"orgs": ["warp-drive"]}"#, "unknown organization"),
            (r#"{"workloads": []}"#, "design space is empty"),
            (r#"{"sync": "yes"}"#, "must be a boolean"),
            (r#"{"size": ["tiny"]}"#, "unknown field 'size'"),
        ] {
            let doc = Json::parse(body).unwrap();
            let err = sweep_spec_from_json(&doc).unwrap_err();
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn responses_are_valid_json() {
        let doc = Json::parse(r#"{"workload": "rawcaudio", "size": "tiny"}"#).unwrap();
        let (spec, node) = job_spec_from_json(&doc).unwrap();
        let result = BatchedResult {
            metrics: JobMetrics {
                instructions: 10,
                cycles: 17,
                ..JobMetrics::default()
            },
            from_cache: false,
        };
        let body = simulate_response(&spec, &result, node);
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(parsed.get("cycles").and_then(Json::as_u64), Some(17));
        assert_eq!(parsed.get("from_cache"), Some(&Json::Bool(false)));
        assert_eq!(
            parsed.get("energy_model").and_then(Json::as_str),
            Some("paper-180nm")
        );
        // The dynamic-only preset carries no leakage figures.
        assert_eq!(parsed.get("total_energy_saving"), None);
        let fetch = parsed.get("activity").and_then(|a| a.get("fetch")).unwrap();
        assert!(fetch.get("gated_byte_cycles").is_some());
        assert!(fetch.get("total_byte_cycles").is_some());

        let outcome = JobOutcome {
            spec,
            metrics: result.metrics,
            from_cache: true,
        };
        let body = sweep_result_json(&[outcome], node);
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(parsed.get("jobs").and_then(Json::as_u64), Some(1));
        assert_eq!(
            parsed.get("served_from_cache").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            parsed.get("energy_model").and_then(Json::as_str),
            Some("paper-180nm")
        );
        assert_eq!(
            parsed
                .get("outcomes")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(1)
        );
    }

    #[test]
    fn leaky_presets_add_savings_fields_to_simulate_responses() {
        let doc = Json::parse(
            r#"{"workload": "rawcaudio", "size": "tiny", "energy_model": "modern-7nm"}"#,
        )
        .unwrap();
        let (spec, node) = job_spec_from_json(&doc).unwrap();
        assert_eq!(node, ProcessNode::Modern7nm);
        let result = BatchedResult {
            metrics: JobMetrics {
                instructions: 10,
                cycles: 17,
                ..JobMetrics::default()
            },
            from_cache: false,
        };
        let body = simulate_response(&spec, &result, node);
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(
            parsed.get("energy_model").and_then(Json::as_str),
            Some("modern-7nm")
        );
        assert!(parsed.get("total_energy_saving").is_some());
        assert!(parsed.get("leakage_saving").is_some());
    }
}
