//! The batching scheduler: the core of the serving subsystem.
//!
//! Concurrent connections enqueue [`JobSpec`]s into one shared bounded
//! queue. A single dispatcher thread drains the queue into batches of up to
//! [`BatchConfig::max_batch`] jobs, **deduplicates** identical
//! configurations by their content hash ([`JobSpec::job_id`]), answers what
//! it can from an in-memory memo and the shared on-disk
//! [`ResultCache`], and feeds only the remaining unique jobs to
//! [`sigcomp_explore::run_jobs`] — the same work-stealing executor the
//! `repro sweep` CLI uses. A thousand clients asking for overlapping
//! configurations therefore cost one simulation each, and every caller still
//! receives bit-identical [`JobMetrics`] (all counters are exact integers;
//! cache hits are substitutable for simulations by construction).
//!
//! Backpressure: when the queue is full, [`Batcher::submit`] blocks the
//! submitting connection thread until the dispatcher makes room, bounding
//! server memory under overload.

use crate::metrics::ServerMetrics;
use sigcomp_explore::{run_jobs, JobMetrics, JobSpec, ResultCache, SweepOptions};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Scheduler tuning knobs.
#[derive(Debug, Clone, Default)]
pub struct BatchConfig {
    /// Maximum jobs coalesced into one executor batch (0 = default 64).
    pub max_batch: usize,
    /// Bounded queue capacity; submitters block when it is full
    /// (0 = default 1024).
    pub queue_capacity: usize,
    /// Worker threads per batch; `None` uses the machine's available
    /// parallelism.
    pub sim_workers: Option<usize>,
    /// Shared on-disk result cache, if any. The same directory may be used
    /// concurrently by `repro sweep` — [`ResultCache::store`] publishes
    /// atomically.
    pub disk_cache: Option<ResultCache>,
}

impl BatchConfig {
    fn max_batch(&self) -> usize {
        if self.max_batch == 0 {
            64
        } else {
            self.max_batch
        }
    }

    fn queue_capacity(&self) -> usize {
        if self.queue_capacity == 0 {
            1024
        } else {
            self.queue_capacity
        }
    }
}

/// One answered job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchedResult {
    /// The measured counters — bit-identical whether simulated fresh,
    /// deduplicated against a concurrent request, or restored from a cache.
    pub metrics: JobMetrics,
    /// `true` when this caller's answer did not run a fresh simulation of
    /// its own (memo hit, disk-cache hit, or coalesced duplicate).
    pub from_cache: bool,
}

/// Why a submission failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The batcher is shutting down and no longer accepts work.
    ShuttingDown,
    /// The simulation of this job's batch panicked; the batcher survives
    /// and later submissions still work, but this request has no result.
    SimulationFailed,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
            SubmitError::SimulationFailed => write!(f, "simulation failed (internal error)"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A per-request completion slot: the dispatcher fills it, the submitting
/// thread sleeps on the condvar until it does.
#[derive(Debug, Default)]
struct Slot {
    done: Mutex<Option<Result<BatchedResult, SubmitError>>>,
    ready: Condvar,
}

impl Slot {
    fn fill(&self, result: Result<BatchedResult, SubmitError>) {
        *self.done.lock().expect("slot poisoned") = Some(result);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<BatchedResult, SubmitError> {
        let mut done = self.done.lock().expect("slot poisoned");
        while done.is_none() {
            done = self.ready.wait(done).expect("slot poisoned");
        }
        done.take().expect("checked above")
    }
}

#[derive(Debug)]
struct QueueState {
    queue: VecDeque<(JobSpec, Arc<Slot>)>,
    /// Results of every job this batcher has ever answered, keyed by
    /// [`JobSpec::job_id`]. Metrics are ~30 integers, so even a large
    /// design space stays a few megabytes.
    memo: HashMap<u64, JobMetrics>,
    shutdown: bool,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<QueueState>,
    /// Signalled when the queue gains work or shutdown begins.
    work_ready: Condvar,
    /// Signalled when the dispatcher drains the queue below capacity.
    space_ready: Condvar,
    config: BatchConfig,
    metrics: Arc<ServerMetrics>,
}

/// The batching scheduler. Dropping it shuts the dispatcher down, failing
/// any still-queued submissions with [`SubmitError::ShuttingDown`].
#[derive(Debug)]
pub struct Batcher {
    shared: Arc<Shared>,
    dispatcher: Option<JoinHandle<()>>,
}

impl Batcher {
    /// Starts the dispatcher thread.
    #[must_use]
    pub fn new(config: BatchConfig, metrics: Arc<ServerMetrics>) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                memo: HashMap::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            space_ready: Condvar::new(),
            config,
            metrics,
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sigcomp-serve-dispatcher".into())
                .spawn(move || dispatch_loop(&shared))
                .expect("spawning the dispatcher thread")
        };
        Batcher {
            shared,
            dispatcher: Some(dispatcher),
        }
    }

    /// Submits one job and blocks until its result is available.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShuttingDown`] when the batcher is stopping.
    pub fn submit(&self, spec: JobSpec) -> Result<BatchedResult, SubmitError> {
        match self.enqueue(spec)? {
            Enqueued::Ready(result) => Ok(*result),
            Enqueued::Waiting(slot) => slot.wait(),
        }
    }

    /// Submits a whole batch (e.g. an enumerated sweep) at once and waits
    /// for every result, returned in `specs` order. Enqueuing everything
    /// before waiting lets the dispatcher coalesce the entire batch instead
    /// of ping-ponging one job at a time.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShuttingDown`] if any job was refused or failed;
    /// partial results are discarded.
    pub fn submit_many(&self, specs: &[JobSpec]) -> Result<Vec<BatchedResult>, SubmitError> {
        let pending: Vec<Enqueued> = specs
            .iter()
            .map(|&spec| self.enqueue(spec))
            .collect::<Result<_, _>>()?;
        pending
            .into_iter()
            .map(|p| match p {
                Enqueued::Ready(result) => Ok(*result),
                Enqueued::Waiting(slot) => slot.wait(),
            })
            .collect()
    }

    /// Jobs currently waiting in the queue (a point-in-time sample).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("queue poisoned")
            .queue
            .len()
    }

    fn enqueue(&self, spec: JobSpec) -> Result<Enqueued, SubmitError> {
        let metrics = &self.shared.metrics;
        ServerMetrics::incr(&metrics.jobs_requested);
        let mut state = self.shared.state.lock().expect("queue poisoned");
        if let Some(&cached) = state.memo.get(&spec.job_id()) {
            ServerMetrics::incr(&metrics.jobs_memo_hits);
            return Ok(Enqueued::Ready(Box::new(BatchedResult {
                metrics: cached,
                from_cache: true,
            })));
        }
        while state.queue.len() >= self.shared.config.queue_capacity() && !state.shutdown {
            state = self.shared.space_ready.wait(state).expect("queue poisoned");
        }
        if state.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        let slot = Arc::new(Slot::default());
        state.queue.push_back((spec, Arc::clone(&slot)));
        drop(state);
        self.shared.work_ready.notify_all();
        Ok(Enqueued::Waiting(slot))
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("queue poisoned");
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        self.shared.space_ready.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

enum Enqueued {
    // Boxed: a BatchedResult carries the full per-stage activity report
    // (~300 bytes), dwarfing the waiting variant's Arc.
    Ready(Box<BatchedResult>),
    Waiting(Arc<Slot>),
}

fn dispatch_loop(shared: &Shared) {
    loop {
        // Collect the next batch (blocking while the queue is empty).
        let batch: Vec<(JobSpec, Arc<Slot>)> = {
            let mut state = shared.state.lock().expect("queue poisoned");
            while state.queue.is_empty() && !state.shutdown {
                state = shared.work_ready.wait(state).expect("queue poisoned");
            }
            if state.queue.is_empty() && state.shutdown {
                return;
            }
            let n = state.queue.len().min(shared.config.max_batch());
            let batch = state.queue.drain(..n).collect();
            shared.space_ready.notify_all();
            batch
        };
        shared.metrics.observe_batch(batch.len() as u64);
        run_batch(shared, batch);
    }
}

/// Deduplicates one drained batch by job id, simulates the unique residue
/// through the explore executor, and fills every waiter's slot.
fn run_batch(shared: &Shared, batch: Vec<(JobSpec, Arc<Slot>)>) {
    let metrics = &shared.metrics;
    // Group the batch: first occurrence of each job id becomes the unique
    // job list fed to the executor; followers coalesce onto it.
    let mut unique: Vec<JobSpec> = Vec::new();
    let mut index_of: HashMap<u64, usize> = HashMap::new();
    let mut members: Vec<(usize, Arc<Slot>, bool)> = Vec::with_capacity(batch.len());
    {
        // Jobs enqueued before a previous batch finished may have been
        // answered by it; re-check the memo so they don't re-simulate.
        let state = shared.state.lock().expect("queue poisoned");
        for (spec, slot) in batch {
            let id = spec.job_id();
            if let Some(&cached) = state.memo.get(&id) {
                ServerMetrics::incr(&metrics.jobs_memo_hits);
                slot.fill(Ok(BatchedResult {
                    metrics: cached,
                    from_cache: true,
                }));
                continue;
            }
            match index_of.get(&id) {
                Some(&idx) => {
                    ServerMetrics::incr(&metrics.jobs_batch_deduped);
                    members.push((idx, slot, true));
                }
                None => {
                    let idx = unique.len();
                    index_of.insert(id, idx);
                    unique.push(spec);
                    members.push((idx, slot, false));
                }
            }
        }
    }
    if unique.is_empty() {
        return;
    }

    // One executor pass over the deduplicated batch. `run_jobs` consults
    // the shared on-disk cache per job and returns outcomes in input order.
    // A panicking simulation must not unwind through the dispatcher: every
    // waiter would hang on its condvar forever (no socket timeout applies
    // there) and the queue would never drain again. Catch it, fail this
    // batch's waiters, and keep serving. AssertUnwindSafe is fine: on panic
    // the batch state is discarded (the memo is only written on success).
    let options = SweepOptions {
        workers: shared.config.sim_workers,
        cache: shared.config.disk_cache.clone(),
    };
    let summary = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_jobs(&unique, &options)
    })) {
        Ok(summary) => summary,
        Err(_) => {
            for (_, slot, _) in members {
                slot.fill(Err(SubmitError::SimulationFailed));
            }
            return;
        }
    };

    // Publish into the memo, then wake every waiter.
    {
        let mut state = shared.state.lock().expect("queue poisoned");
        for outcome in &summary.outcomes {
            state.memo.insert(outcome.spec.job_id(), outcome.metrics);
        }
    }
    for outcome in &summary.outcomes {
        if outcome.from_cache {
            ServerMetrics::incr(&metrics.jobs_disk_cache_hits);
        } else {
            ServerMetrics::incr(&metrics.jobs_simulated);
        }
    }
    for (idx, slot, follower) in members {
        let outcome = &summary.outcomes[idx];
        slot.fill(Ok(BatchedResult {
            metrics: outcome.metrics,
            // A follower's answer reused the leader's run; the leader
            // reports whether *its* answer came from the disk cache.
            from_cache: follower || outcome.from_cache,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigcomp::ExtScheme;
    use sigcomp_explore::{simulate_job, MemProfile};
    use sigcomp_pipeline::OrgKind;
    use sigcomp_workloads::{find, suite_names, WorkloadSize};
    use std::sync::atomic::Ordering;

    fn spec(workload_index: usize, org: OrgKind) -> JobSpec {
        JobSpec {
            scheme: ExtScheme::ThreeBit,
            org,
            workload: suite_names()[workload_index],
            size: WorkloadSize::Tiny,
            mem: MemProfile::Paper,
            source: sigcomp_explore::TraceSource::Kernel,
        }
    }

    fn batcher() -> (Batcher, Arc<ServerMetrics>) {
        let metrics = Arc::new(ServerMetrics::default());
        let config = BatchConfig {
            max_batch: 16,
            queue_capacity: 64,
            sim_workers: Some(2),
            disk_cache: None,
        };
        (Batcher::new(config, Arc::clone(&metrics)), metrics)
    }

    #[test]
    fn concurrent_identical_submissions_simulate_once() {
        let (batcher, metrics) = batcher();
        let job = spec(0, OrgKind::ByteSerial);
        let expected = {
            let benchmark = find(job.workload, job.size).unwrap();
            simulate_job(&job, &benchmark)
        };
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let batcher = &batcher;
                scope.spawn(move || {
                    let result = batcher.submit(job).expect("submit succeeds");
                    assert_eq!(result.metrics, expected, "answers must be bit-identical");
                });
            }
        });
        let requested = metrics.jobs_requested.load(Ordering::Relaxed);
        let simulated = metrics.jobs_simulated.load(Ordering::Relaxed);
        assert_eq!(requested, 8);
        assert_eq!(simulated, 1, "one simulation serves all eight clients");
        let coalesced = metrics.jobs_batch_deduped.load(Ordering::Relaxed)
            + metrics.jobs_memo_hits.load(Ordering::Relaxed);
        assert_eq!(coalesced, 7);
    }

    #[test]
    fn submit_many_answers_in_order_with_duplicates() {
        let (batcher, metrics) = batcher();
        let a = spec(0, OrgKind::Baseline32);
        let b = spec(0, OrgKind::ByteSerial);
        let results = batcher.submit_many(&[a, b, a, b, a]).expect("batch runs");
        assert_eq!(results.len(), 5);
        assert_eq!(results[0].metrics, results[2].metrics);
        assert_eq!(results[0].metrics, results[4].metrics);
        assert_eq!(results[1].metrics, results[3].metrics);
        assert_ne!(results[0].metrics, results[1].metrics);
        assert!(metrics.jobs_simulated.load(Ordering::Relaxed) <= 2);
    }

    #[test]
    fn memo_serves_repeat_submissions_without_requeueing() {
        let (batcher, metrics) = batcher();
        let job = spec(1, OrgKind::Baseline32);
        let first = batcher.submit(job).expect("first submit");
        assert!(!first.from_cache);
        let second = batcher.submit(job).expect("second submit");
        assert!(second.from_cache, "repeat must be a memo hit");
        assert_eq!(first.metrics, second.metrics);
        assert_eq!(metrics.jobs_memo_hits.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.jobs_simulated.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn disk_cache_hits_are_counted_and_bit_identical() {
        let dir = std::env::temp_dir().join(format!(
            "sigcomp-serve-test-diskcache-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).expect("cache opens");
        let job = spec(2, OrgKind::ByteSerial);
        // Warm the cache the way a CLI sweep would.
        let direct = {
            let benchmark = find(job.workload, job.size).unwrap();
            simulate_job(&job, &benchmark)
        };
        cache.store(job.job_id(), &direct).expect("store succeeds");

        let metrics = Arc::new(ServerMetrics::default());
        let config = BatchConfig {
            disk_cache: Some(cache),
            sim_workers: Some(1),
            ..BatchConfig::default()
        };
        let batcher = Batcher::new(config, Arc::clone(&metrics));
        let result = batcher.submit(job).expect("submit succeeds");
        assert!(result.from_cache);
        assert_eq!(result.metrics, direct);
        assert_eq!(metrics.jobs_disk_cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.jobs_simulated.load(Ordering::Relaxed), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let (first, _metrics) = batcher();
        drop(first);
        // Dropping joins the dispatcher; a fresh batcher still works.
        let (second, _metrics) = batcher();
        let result = second.submit(spec(0, OrgKind::Baseline32));
        assert!(result.is_ok());
    }
}
