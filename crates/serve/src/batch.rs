//! The batching scheduler: the core of the serving subsystem.
//!
//! Concurrent connections enqueue [`JobSpec`]s into one shared bounded
//! queue. A single dispatcher thread drains the queue into batches of up to
//! [`BatchConfig::max_batch`] jobs, **deduplicates** identical
//! configurations by their content hash ([`sigcomp_explore::dedup_jobs`] —
//! the same grouping the subprocess backend shards by, so coalescing
//! semantics can never drift between the server and the CLI), answers what
//! it can from a *bounded* in-memory memo and the shared on-disk
//! [`ResultCache`], and places only the remaining unique jobs on the
//! configured [`ExecBackend`] via [`sigcomp_explore::try_run_jobs`]: the
//! in-process work-stealing pool by default, or sharded `repro worker`
//! subprocesses so `/sweep` requests fan out across processes. A thousand
//! clients asking for overlapping configurations therefore cost one
//! simulation each, and every caller still receives bit-identical
//! [`JobMetrics`] (all counters are exact integers; cache hits are
//! substitutable for simulations by construction).
//!
//! Backpressure: when the queue is full, [`Batcher::submit`] blocks the
//! submitting connection thread until the dispatcher makes room, bounding
//! server memory under overload. The memo is bounded too
//! ([`BatchConfig::memo_capacity`], insertion-order eviction), so sustained
//! *distinct* traffic holds server memory flat instead of growing a
//! result per job id forever.

use crate::metrics::ServerMetrics;
use sigcomp_explore::{
    dedup_jobs, try_run_jobs, ExecBackend, JobMetrics, JobSpec, ResultCache, SweepOptions,
};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Default [`BatchConfig::memo_capacity`]: metrics are ~300 bytes, so the
/// default memo tops out around a megabyte.
pub const DEFAULT_MEMO_CAPACITY: usize = 4096;

/// Scheduler tuning knobs.
#[derive(Debug, Clone, Default)]
pub struct BatchConfig {
    /// Maximum jobs coalesced into one executor batch (0 = default 64).
    pub max_batch: usize,
    /// Bounded queue capacity; submitters block when it is full
    /// (0 = default 1024).
    pub queue_capacity: usize,
    /// Worker threads per batch; `None` uses the machine's available
    /// parallelism.
    pub sim_workers: Option<usize>,
    /// Shared on-disk result cache, if any. The same directory may be used
    /// concurrently by `repro sweep` — [`ResultCache::store`] publishes
    /// atomically. Required when `backend` is
    /// [`ExecBackend::Subprocess`] (it is the merge point).
    pub disk_cache: Option<ResultCache>,
    /// Where each batch's unique jobs execute (default: in-process
    /// threads).
    pub backend: ExecBackend,
    /// Result-memo entries retained, oldest evicted first
    /// (0 = [`DEFAULT_MEMO_CAPACITY`]). Evicted entries simply fall back
    /// to the disk cache or a re-simulation.
    pub memo_capacity: usize,
}

impl BatchConfig {
    fn max_batch(&self) -> usize {
        if self.max_batch == 0 {
            64
        } else {
            self.max_batch
        }
    }

    fn queue_capacity(&self) -> usize {
        if self.queue_capacity == 0 {
            1024
        } else {
            self.queue_capacity
        }
    }

    fn memo_capacity(&self) -> usize {
        if self.memo_capacity == 0 {
            DEFAULT_MEMO_CAPACITY
        } else {
            self.memo_capacity
        }
    }
}

/// Upper bound on the load-shed `Retry-After` hint, in seconds. A queue deep
/// enough to hit this cap is drained long before the hint expires, so a
/// larger value would only idle clients.
pub const MAX_RETRY_AFTER_SECS: u64 = 30;

/// [`Batcher::retry_after_hint`]'s backlog model as a pure function: one
/// second per `max_batch`-sized executor batch queued, clamped to
/// `1..=`[`MAX_RETRY_AFTER_SECS`].
fn retry_after_secs(queue_depth: u64, max_batch: u64) -> u64 {
    queue_depth
        .div_ceil(max_batch.max(1))
        .clamp(1, MAX_RETRY_AFTER_SECS)
}

/// The in-memory result memo: a capacity-bounded map from
/// [`JobSpec::job_id`] to metrics with insertion-order eviction. Bounded so
/// a long-running server under sustained *distinct* traffic holds memory
/// flat; an evicted entry merely costs a disk-cache load or re-simulation.
#[derive(Debug)]
struct BoundedMemo {
    entries: HashMap<u64, JobMetrics>,
    /// Insertion order, oldest first.
    order: VecDeque<u64>,
    capacity: usize,
}

impl BoundedMemo {
    fn new(capacity: usize) -> Self {
        BoundedMemo {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    fn get(&self, id: u64) -> Option<JobMetrics> {
        self.entries.get(&id).copied()
    }

    fn insert(&mut self, id: u64, metrics: JobMetrics) {
        if self.entries.insert(id, metrics).is_none() {
            self.order.push_back(id);
            while self.entries.len() > self.capacity {
                if let Some(evicted) = self.order.pop_front() {
                    self.entries.remove(&evicted);
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// One answered job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchedResult {
    /// The measured counters — bit-identical whether simulated fresh,
    /// deduplicated against a concurrent request, or restored from a cache.
    pub metrics: JobMetrics,
    /// `true` when this caller's answer did not run a fresh simulation of
    /// its own (memo hit, disk-cache hit, or coalesced duplicate).
    pub from_cache: bool,
}

/// Why a submission failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The batcher is shutting down and no longer accepts work.
    ShuttingDown,
    /// The queue is full and the caller asked not to wait: the job was
    /// **shed**, not queued. The HTTP layer turns this into a fast `503`
    /// with a `Retry-After` header instead of a connection that hangs.
    Overloaded,
    /// The simulation of this job's batch panicked; the batcher survives
    /// and later submissions still work, but this request has no result.
    SimulationFailed,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
            SubmitError::Overloaded => {
                write!(
                    f,
                    "server is overloaded (batch queue is full); retry shortly"
                )
            }
            SubmitError::SimulationFailed => write!(f, "simulation failed (internal error)"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A per-request completion slot: the dispatcher fills it, the submitting
/// thread sleeps on the condvar until it does.
#[derive(Debug, Default)]
struct Slot {
    done: Mutex<Option<Result<BatchedResult, SubmitError>>>,
    ready: Condvar,
}

impl Slot {
    fn fill(&self, result: Result<BatchedResult, SubmitError>) {
        *self.done.lock().expect("slot poisoned") = Some(result);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<BatchedResult, SubmitError> {
        let mut done = self.done.lock().expect("slot poisoned");
        while done.is_none() {
            done = self.ready.wait(done).expect("slot poisoned");
        }
        done.take().expect("checked above")
    }
}

#[derive(Debug)]
struct QueueState {
    queue: VecDeque<(JobSpec, Arc<Slot>)>,
    /// Recently answered jobs, keyed by [`JobSpec::job_id`] and bounded by
    /// [`BatchConfig::memo_capacity`].
    memo: BoundedMemo,
    shutdown: bool,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<QueueState>,
    /// Signalled when the queue gains work or shutdown begins.
    work_ready: Condvar,
    /// Signalled when the dispatcher drains the queue below capacity.
    space_ready: Condvar,
    config: BatchConfig,
    metrics: Arc<ServerMetrics>,
}

/// The batching scheduler. Dropping it shuts the dispatcher down, failing
/// any still-queued submissions with [`SubmitError::ShuttingDown`].
#[derive(Debug)]
pub struct Batcher {
    shared: Arc<Shared>,
    dispatcher: Option<JoinHandle<()>>,
}

impl Batcher {
    /// Starts the dispatcher thread.
    #[must_use]
    pub fn new(config: BatchConfig, metrics: Arc<ServerMetrics>) -> Self {
        let memo = BoundedMemo::new(config.memo_capacity());
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                memo,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            space_ready: Condvar::new(),
            config,
            metrics,
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sigcomp-serve-dispatcher".into())
                .spawn(move || dispatch_loop(&shared))
                .expect("spawning the dispatcher thread")
        };
        Batcher {
            shared,
            dispatcher: Some(dispatcher),
        }
    }

    /// Submits one job and blocks until its result is available. When the
    /// queue is full the job is **shed** with [`SubmitError::Overloaded`]
    /// instead of blocking the calling (connection) thread: an interactive
    /// `/simulate` client is better served by a fast `503 Retry-After` than
    /// by a connection that silently hangs until space appears.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShuttingDown`] when the batcher is stopping;
    /// [`SubmitError::Overloaded`] when the queue is full.
    pub fn submit(&self, spec: JobSpec) -> Result<BatchedResult, SubmitError> {
        match self.enqueue(spec, false)? {
            Enqueued::Ready(result) => Ok(*result),
            Enqueued::Waiting(slot) => slot.wait(),
        }
    }

    /// Submits a whole batch (e.g. an enumerated sweep) at once and waits
    /// for every result, returned in `specs` order. Enqueuing everything
    /// before waiting lets the dispatcher coalesce the entire batch instead
    /// of ping-ponging one job at a time. Unlike [`Batcher::submit`], a full
    /// queue **blocks** rather than sheds: batch callers (sweeps, fleet
    /// dispatches) are throughput work where backpressure is the right
    /// answer, and shedding mid-batch would discard partial results.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShuttingDown`] if any job was refused or failed;
    /// partial results are discarded.
    pub fn submit_many(&self, specs: &[JobSpec]) -> Result<Vec<BatchedResult>, SubmitError> {
        let pending: Vec<Enqueued> = specs
            .iter()
            .map(|&spec| self.enqueue(spec, true))
            .collect::<Result<_, _>>()?;
        pending
            .into_iter()
            .map(|p| match p {
                Enqueued::Ready(result) => Ok(*result),
                Enqueued::Waiting(slot) => slot.wait(),
            })
            .collect()
    }

    /// A non-blocking memo probe: answers `spec` from the in-memory memo
    /// iff the result is already there, with the same accounting as
    /// [`Batcher::submit`]'s memo-hit path. This is the reactor's fast
    /// path — a hit costs one short lock, so repeat `/simulate` traffic is
    /// answered on the event-loop worker itself; a miss costs one failed
    /// lookup and the caller falls back to a dispatch-thread
    /// [`Batcher::submit`] (which re-counts the request, so a miss here
    /// deliberately touches no counters).
    #[must_use]
    pub fn try_memo(&self, spec: JobSpec) -> Option<BatchedResult> {
        let cached = {
            let state = self.shared.state.lock().expect("queue poisoned");
            state.memo.get(spec.job_id())?
        };
        let metrics = &self.shared.metrics;
        ServerMetrics::incr(&metrics.jobs_requested);
        ServerMetrics::incr(&metrics.jobs_memo_hits);
        Some(BatchedResult {
            metrics: cached,
            from_cache: true,
        })
    }

    /// Jobs currently waiting in the queue (a point-in-time sample).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("queue poisoned")
            .queue
            .len()
    }

    /// Results currently memoized (a point-in-time sample); never exceeds
    /// the configured [`BatchConfig::memo_capacity`].
    #[must_use]
    pub fn memo_len(&self) -> usize {
        self.shared.state.lock().expect("queue poisoned").memo.len()
    }

    /// The `Retry-After` hint (seconds) for a load-shed response, derived
    /// from the scheduler's actual backlog rather than a constant: one
    /// second per executor batch queued ahead of the retrying client
    /// (`queue_depth / max_batch`, rounded up), at least 1 and capped at
    /// [`MAX_RETRY_AFTER_SECS`]. A deeper queue or a smaller batch size
    /// pushes the hint out; a nearly drained queue says "come right back".
    #[must_use]
    pub fn retry_after_hint(&self) -> u64 {
        retry_after_secs(
            self.queue_depth() as u64,
            self.shared.config.max_batch() as u64,
        )
    }

    fn enqueue(&self, spec: JobSpec, block: bool) -> Result<Enqueued, SubmitError> {
        let metrics = &self.shared.metrics;
        ServerMetrics::incr(&metrics.jobs_requested);
        let mut state = self.shared.state.lock().expect("queue poisoned");
        if let Some(cached) = state.memo.get(spec.job_id()) {
            ServerMetrics::incr(&metrics.jobs_memo_hits);
            return Ok(Enqueued::Ready(Box::new(BatchedResult {
                metrics: cached,
                from_cache: true,
            })));
        }
        if !block && state.queue.len() >= self.shared.config.queue_capacity() && !state.shutdown {
            ServerMetrics::incr(&metrics.jobs_shed);
            return Err(SubmitError::Overloaded);
        }
        while state.queue.len() >= self.shared.config.queue_capacity() && !state.shutdown {
            state = self.shared.space_ready.wait(state).expect("queue poisoned");
        }
        if state.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        let slot = Arc::new(Slot::default());
        state.queue.push_back((spec, Arc::clone(&slot)));
        drop(state);
        self.shared.work_ready.notify_all();
        Ok(Enqueued::Waiting(slot))
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("queue poisoned");
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        self.shared.space_ready.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

enum Enqueued {
    // Boxed: a BatchedResult carries the full per-stage activity report
    // (~300 bytes), dwarfing the waiting variant's Arc.
    Ready(Box<BatchedResult>),
    Waiting(Arc<Slot>),
}

fn dispatch_loop(shared: &Shared) {
    loop {
        // Collect the next batch (blocking while the queue is empty).
        let batch: Vec<(JobSpec, Arc<Slot>)> = {
            let mut state = shared.state.lock().expect("queue poisoned");
            while state.queue.is_empty() && !state.shutdown {
                state = shared.work_ready.wait(state).expect("queue poisoned");
            }
            if state.queue.is_empty() && state.shutdown {
                return;
            }
            let n = state.queue.len().min(shared.config.max_batch());
            let batch = state.queue.drain(..n).collect();
            shared.space_ready.notify_all();
            batch
        };
        shared.metrics.observe_batch(batch.len() as u64);
        run_batch(shared, batch);
    }
}

/// Deduplicates one drained batch by job id, places the unique residue on
/// the configured execution backend, and fills every waiter's slot.
fn run_batch(shared: &Shared, batch: Vec<(JobSpec, Arc<Slot>)>) {
    let metrics = &shared.metrics;
    // Jobs enqueued before a previous batch finished may have been answered
    // by it; re-check the memo so they don't re-simulate, then group the
    // remainder with the workspace-wide dedup (first occurrence leads).
    let mut residue: Vec<(JobSpec, Arc<Slot>)> = Vec::with_capacity(batch.len());
    {
        let state = shared.state.lock().expect("queue poisoned");
        for (spec, slot) in batch {
            if let Some(cached) = state.memo.get(spec.job_id()) {
                ServerMetrics::incr(&metrics.jobs_memo_hits);
                slot.fill(Ok(BatchedResult {
                    metrics: cached,
                    from_cache: true,
                }));
                continue;
            }
            residue.push((spec, slot));
        }
    }
    if residue.is_empty() {
        return;
    }
    let specs: Vec<JobSpec> = residue.iter().map(|(spec, _)| *spec).collect();
    let deduped = dedup_jobs(&specs);
    let mut members: Vec<(usize, Arc<Slot>, bool)> = Vec::with_capacity(residue.len());
    for (pos, (_, slot)) in residue.into_iter().enumerate() {
        let follower = deduped.is_follower(pos);
        if follower {
            ServerMetrics::incr(&metrics.jobs_batch_deduped);
        }
        members.push((deduped.leader_of[pos], slot, follower));
    }

    // One backend pass over the deduplicated batch: the in-process executor
    // or a sharded subprocess fan-out, both consulting the shared on-disk
    // cache and returning outcomes in input order.
    // A panicking simulation must not unwind through the dispatcher: every
    // waiter would hang on its condvar forever (no socket timeout applies
    // there) and the queue would never drain again. Catch it, fail this
    // batch's waiters, and keep serving. AssertUnwindSafe is fine: on panic
    // the batch state is discarded (the memo is only written on success).
    // Backend errors (a dead worker child, say) fail the same way, after
    // logging the named cause server-side.
    let options = SweepOptions {
        workers: shared.config.sim_workers,
        cache: shared.config.disk_cache.clone(),
        backend: shared.config.backend.clone(),
    };
    let placed = match &shared.config.backend {
        ExecBackend::LocalThreads => &metrics.jobs_placed_local,
        ExecBackend::Subprocess(_) => &metrics.jobs_placed_subprocess,
        ExecBackend::Fleet(_) => &metrics.jobs_placed_fleet,
    };
    placed.fetch_add(
        deduped.unique.len() as u64,
        std::sync::atomic::Ordering::Relaxed,
    );
    let summary = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        try_run_jobs(&deduped.unique, &options)
    })) {
        Ok(Ok(summary)) => summary,
        Ok(Err(e)) => {
            eprintln!("sigcomp-serve: batch execution failed: {e}");
            for (_, slot, _) in members {
                slot.fill(Err(SubmitError::SimulationFailed));
            }
            return;
        }
        Err(_) => {
            for (_, slot, _) in members {
                slot.fill(Err(SubmitError::SimulationFailed));
            }
            return;
        }
    };

    // Publish into the memo, then wake every waiter.
    {
        let mut state = shared.state.lock().expect("queue poisoned");
        for outcome in &summary.outcomes {
            state.memo.insert(outcome.spec.job_id(), outcome.metrics);
        }
    }
    for outcome in &summary.outcomes {
        if outcome.from_cache {
            ServerMetrics::incr(&metrics.jobs_disk_cache_hits);
        } else {
            ServerMetrics::incr(&metrics.jobs_simulated);
        }
    }
    for (idx, slot, follower) in members {
        let outcome = &summary.outcomes[idx];
        slot.fill(Ok(BatchedResult {
            metrics: outcome.metrics,
            // A follower's answer reused the leader's run; the leader
            // reports whether *its* answer came from the disk cache.
            from_cache: follower || outcome.from_cache,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigcomp::ExtScheme;

    #[test]
    fn retry_after_tracks_the_batch_backlog() {
        // An empty (or racing-toward-empty) queue still asks for a 1 s
        // pause, never 0 — "Retry-After: 0" would invite a busy loop.
        assert_eq!(retry_after_secs(0, 64), 1);
        // Up to one batch pending: come back after one drain interval.
        assert_eq!(retry_after_secs(1, 64), 1);
        assert_eq!(retry_after_secs(64, 64), 1);
        // The hint grows with the number of batches queued ahead.
        assert_eq!(retry_after_secs(65, 64), 2);
        assert_eq!(retry_after_secs(640, 64), 10);
        // Tiny batches make the same queue look longer.
        assert_eq!(retry_after_secs(8, 1), 8);
        // Pathological backlogs are capped, not relayed verbatim.
        assert_eq!(retry_after_secs(1_000_000, 1), MAX_RETRY_AFTER_SECS);
        // A zero max_batch cannot divide-by-zero.
        assert_eq!(retry_after_secs(10, 0), 10);
    }

    use sigcomp_explore::{simulate_job, MemProfile};
    use sigcomp_pipeline::OrgKind;
    use sigcomp_workloads::{find, suite_names, WorkloadSize};
    use std::sync::atomic::Ordering;

    fn spec(workload_index: usize, org: OrgKind) -> JobSpec {
        JobSpec {
            scheme: ExtScheme::ThreeBit,
            org,
            workload: suite_names()[workload_index],
            size: WorkloadSize::Tiny,
            mem: MemProfile::Paper,
            source: sigcomp_explore::TraceSource::Kernel,
        }
    }

    fn batcher() -> (Batcher, Arc<ServerMetrics>) {
        let metrics = Arc::new(ServerMetrics::default());
        let config = BatchConfig {
            max_batch: 16,
            queue_capacity: 64,
            sim_workers: Some(2),
            ..BatchConfig::default()
        };
        (Batcher::new(config, Arc::clone(&metrics)), metrics)
    }

    #[test]
    fn concurrent_identical_submissions_simulate_once() {
        let (batcher, metrics) = batcher();
        let job = spec(0, OrgKind::ByteSerial);
        let expected = {
            let benchmark = find(job.workload, job.size).unwrap();
            simulate_job(&job, &benchmark)
        };
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let batcher = &batcher;
                scope.spawn(move || {
                    let result = batcher.submit(job).expect("submit succeeds");
                    assert_eq!(result.metrics, expected, "answers must be bit-identical");
                });
            }
        });
        let requested = metrics.jobs_requested.load(Ordering::Relaxed);
        let simulated = metrics.jobs_simulated.load(Ordering::Relaxed);
        assert_eq!(requested, 8);
        assert_eq!(simulated, 1, "one simulation serves all eight clients");
        let coalesced = metrics.jobs_batch_deduped.load(Ordering::Relaxed)
            + metrics.jobs_memo_hits.load(Ordering::Relaxed);
        assert_eq!(coalesced, 7);
    }

    #[test]
    fn submit_many_answers_in_order_with_duplicates() {
        let (batcher, metrics) = batcher();
        let a = spec(0, OrgKind::Baseline32);
        let b = spec(0, OrgKind::ByteSerial);
        let results = batcher.submit_many(&[a, b, a, b, a]).expect("batch runs");
        assert_eq!(results.len(), 5);
        assert_eq!(results[0].metrics, results[2].metrics);
        assert_eq!(results[0].metrics, results[4].metrics);
        assert_eq!(results[1].metrics, results[3].metrics);
        assert_ne!(results[0].metrics, results[1].metrics);
        assert!(metrics.jobs_simulated.load(Ordering::Relaxed) <= 2);
    }

    #[test]
    fn memo_serves_repeat_submissions_without_requeueing() {
        let (batcher, metrics) = batcher();
        let job = spec(1, OrgKind::Baseline32);
        let first = batcher.submit(job).expect("first submit");
        assert!(!first.from_cache);
        let second = batcher.submit(job).expect("second submit");
        assert!(second.from_cache, "repeat must be a memo hit");
        assert_eq!(first.metrics, second.metrics);
        assert_eq!(metrics.jobs_memo_hits.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.jobs_simulated.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn disk_cache_hits_are_counted_and_bit_identical() {
        let dir = std::env::temp_dir().join(format!(
            "sigcomp-serve-test-diskcache-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).expect("cache opens");
        let job = spec(2, OrgKind::ByteSerial);
        // Warm the cache the way a CLI sweep would.
        let direct = {
            let benchmark = find(job.workload, job.size).unwrap();
            simulate_job(&job, &benchmark)
        };
        cache.store(job.job_id(), &direct).expect("store succeeds");

        let metrics = Arc::new(ServerMetrics::default());
        let config = BatchConfig {
            disk_cache: Some(cache),
            sim_workers: Some(1),
            ..BatchConfig::default()
        };
        let batcher = Batcher::new(config, Arc::clone(&metrics));
        let result = batcher.submit(job).expect("submit succeeds");
        assert!(result.from_cache);
        assert_eq!(result.metrics, direct);
        assert_eq!(metrics.jobs_disk_cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.jobs_simulated.load(Ordering::Relaxed), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn local_placement_is_counted_per_unique_job() {
        let (batcher, metrics) = batcher();
        let a = spec(0, OrgKind::Baseline32);
        let b = spec(0, OrgKind::ByteSerial);
        batcher.submit_many(&[a, b, a]).expect("batch runs");
        // Dedup happens before placement: at most 2 jobs reach the backend,
        // all on the local side (the default backend).
        let local = metrics.jobs_placed_local.load(Ordering::Relaxed);
        assert!(local == 2, "expected 2 local placements, saw {local}");
        assert_eq!(metrics.jobs_placed_subprocess.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn sustained_distinct_submissions_hold_the_memo_flat() {
        // The memory-flatness regression guard: a capped memo must never
        // grow past its capacity no matter how many distinct jobs stream
        // through, and evicted entries must still be answerable (from the
        // executor) rather than erroring.
        let metrics = Arc::new(ServerMetrics::default());
        let config = BatchConfig {
            max_batch: 4,
            queue_capacity: 16,
            sim_workers: Some(2),
            memo_capacity: 3,
            ..BatchConfig::default()
        };
        let batcher = Batcher::new(config, Arc::clone(&metrics));
        // 2 workloads × 4 orgs = 8 distinct jobs, submitted twice over.
        let orgs = [
            OrgKind::Baseline32,
            OrgKind::ByteSerial,
            OrgKind::ParallelSkewed,
            OrgKind::ParallelCompressed,
        ];
        let mut distinct = Vec::new();
        for workload in 0..2 {
            for org in orgs {
                distinct.push(spec(workload, org));
            }
        }
        for round in 0..2 {
            for &job in &distinct {
                let result = batcher.submit(job).expect("submit succeeds");
                assert!(result.metrics.cycles > 0);
                assert!(
                    batcher.memo_len() <= 3,
                    "round {round}: memo grew to {}",
                    batcher.memo_len()
                );
            }
        }
        assert_eq!(batcher.memo_len(), 3, "memo sits at its cap");
        // Every submission was answered; evicted entries re-simulated
        // rather than failing.
        assert_eq!(
            metrics.jobs_requested.load(Ordering::Relaxed),
            2 * distinct.len() as u64
        );
    }

    #[test]
    fn full_queue_sheds_single_submissions_instead_of_blocking() {
        let metrics = Arc::new(ServerMetrics::default());
        let config = BatchConfig {
            max_batch: 1,
            queue_capacity: 1,
            sim_workers: Some(1),
            ..BatchConfig::default()
        };
        let batcher = Batcher::new(config, Arc::clone(&metrics));
        // Fill the queue behind the dispatcher's back: push without
        // signalling work_ready, so the dispatcher stays asleep on its
        // condvar and cannot drain the entry before we observe the shed.
        {
            let mut state = batcher.shared.state.lock().unwrap();
            state
                .queue
                .push_back((spec(0, OrgKind::Baseline32), Arc::new(Slot::default())));
        }
        let shed = batcher.submit(spec(0, OrgKind::ByteSerial));
        assert_eq!(shed, Err(SubmitError::Overloaded));
        assert_eq!(metrics.jobs_shed.load(Ordering::Relaxed), 1);
        // Dropping the batcher wakes the dispatcher, which drains the
        // stuffed entry and exits cleanly.
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let (first, _metrics) = batcher();
        drop(first);
        // Dropping joins the dispatcher; a fresh batcher still works.
        let (second, _metrics) = batcher();
        let result = second.submit(spec(0, OrgKind::Baseline32));
        assert!(result.is_ok());
    }
}
