//! The TCP front-end: accept loop, the reactor event loop, and routing.
//!
//! Endpoints:
//!
//! | method | path        | body                | response |
//! |--------|-------------|---------------------|----------|
//! | GET    | `/healthz`  | —                   | `{"status": "ok"}` |
//! | GET    | `/metrics`  | —                   | counters + latency histogram |
//! | GET    | `/metrics.json` | —               | the full `sigcomp_obs` registry snapshot |
//! | POST   | `/simulate` | one job spec        | that job's metrics (batched + deduplicated) |
//! | POST   | `/sweep`    | a sweep spec        | poll ticket, or the full result with `"sync": true` |
//! | GET    | `/jobs/:id` | —                   | sweep ticket state / result |
//! | POST   | `/register` | fleet announcement  | worker joins the frontier's pool |
//! | POST   | `/heartbeat`| announcement + obs  | liveness refresh + worker obs snapshot |
//! | POST   | `/fleet/dispatch` | a job shard   | `sigcomp-fleet v1` report (cache entries + obs) |
//! | GET    | `/fleet`    | —                   | worker-pool status + merged worker obs |
//!
//! Connections are served by the nonblocking [`crate::reactor`] by default
//! ([`ServeModel::Reactor`]): a fixed worker pool drives per-connection
//! state machines with HTTP/1.1 keep-alive, pipelining, read/write
//! deadlines, and an accept-gate connection cap. Cheap routes (health,
//! metrics, fleet registration, ticket polls, and memoized `/simulate`
//! hits) are answered inline on the event-loop worker; simulation-bound
//! routes are offloaded to a small dispatch pool so the event loop never
//! blocks — the real work stays serialized through the [`Batcher`]'s
//! dispatcher exactly as before. The pre-reactor thread-per-connection
//! model survives as [`ServeModel::ThreadPerConn`], kept as the measured
//! baseline for the saturation bench.

use crate::api::{job_spec_from_json, simulate_response, sweep_result_json, sweep_spec_from_json};
use crate::batch::{BatchConfig, Batcher, SubmitError};
use crate::http::{read_request, HttpError, Request, Response};
use crate::json::Json;
use crate::metrics::ServerMetrics;
use crate::reactor::{Completion, Handler, Reactor, ReactorConfig};
use crate::registry::{SweepRegistry, SweepState};
use sigcomp::ProcessNode;
use sigcomp_explore::JobOutcome;
use sigcomp_fabric::pool::{self, DEFAULT_LIVENESS_TTL};
use sigcomp_fabric::proto::{self, DispatchOutcome};
use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a legacy-model connection may dally sending its request or
/// draining the response before the server gives up on it.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(30);

/// Upper bound on concurrently-handled connections in the legacy
/// thread-per-connection model. At the cap the accept loop stops
/// accepting, so further clients queue in the kernel backlog instead of
/// spawning unbounded threads. (The reactor model sheds at its own
/// [`ServeConfig::max_conns`] cap with a fast `503` instead.)
const MAX_CONNECTIONS: usize = 256;

/// Default size of the reactor's dispatch pool — the threads that run
/// simulation-bound routes (`/simulate` misses, sync `/sweep`,
/// `/fleet/dispatch`) so the event loop never blocks.
const DEFAULT_DISPATCH_THREADS: usize = 16;

/// A counting gate for in-flight legacy connections: `acquire` blocks the
/// accept loop at [`MAX_CONNECTIONS`]; the returned guard releases on drop
/// (even if the connection handler panics).
#[derive(Debug, Default)]
struct ConnGate {
    count: Mutex<usize>,
    changed: Condvar,
}

impl ConnGate {
    fn acquire(self: &Arc<Self>) -> ConnPermit {
        let mut count = self.count.lock().expect("gate poisoned");
        while *count >= MAX_CONNECTIONS {
            count = self.changed.wait(count).expect("gate poisoned");
        }
        *count += 1;
        ConnPermit {
            gate: Arc::clone(self),
        }
    }
}

#[derive(Debug)]
struct ConnPermit {
    gate: Arc<ConnGate>,
}

impl Drop for ConnPermit {
    fn drop(&mut self) {
        *self.gate.count.lock().expect("gate poisoned") -= 1;
        self.gate.changed.notify_one();
    }
}

/// Which connection-handling model the server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeModel {
    /// The nonblocking event loop: keep-alive, pipelining, deadlines,
    /// socket-layer admission control.
    #[default]
    Reactor,
    /// The pre-reactor blocking model: one thread per connection, one
    /// request per connection. Kept as the saturation bench's baseline.
    ThreadPerConn,
}

/// Server configuration.
#[derive(Debug)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (port `0` picks a free port).
    /// Empty string defaults to `127.0.0.1:7878`.
    pub addr: String,
    /// Batching scheduler tuning, including the shared on-disk result
    /// cache ([`BatchConfig::disk_cache`] — also consulted and filled by
    /// CLI sweeps pointed at the same directory) and the execution backend
    /// ([`BatchConfig::backend`]).
    pub batch: BatchConfig,
    /// Finished `/sweep` tickets retained for `GET /jobs/:id` polling
    /// before oldest-first eviction
    /// (0 = [`crate::registry::MAX_FINISHED_TICKETS`]).
    pub finished_tickets: usize,
    /// Connection-handling model (default [`ServeModel::Reactor`]).
    pub model: ServeModel,
    /// Reactor connection cap; above it new connections are shed with a
    /// fast `503` + `Retry-After`
    /// (0 = [`crate::reactor::DEFAULT_MAX_CONNS`]).
    pub max_conns: usize,
    /// Reactor per-connection read deadline: a partial request older than
    /// this is answered `408` and closed
    /// (zero = [`crate::reactor::DEFAULT_READ_DEADLINE`]).
    pub read_deadline: Duration,
    /// Honor client `Connection: keep-alive` (reactor model only; default
    /// on). Off reproduces the close-per-request behavior exactly.
    pub keep_alive: bool,
    /// Reactor event-loop worker threads (0 = min(parallelism, 4)).
    pub reactor_workers: usize,
    /// Dispatch-pool threads for simulation-bound routes
    /// (0 = [`DEFAULT_DISPATCH_THREADS`]).
    pub dispatch_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: String::new(),
            batch: BatchConfig::default(),
            finished_tickets: 0,
            model: ServeModel::Reactor,
            max_conns: 0,
            read_deadline: Duration::ZERO,
            keep_alive: true,
            reactor_workers: 0,
            dispatch_threads: 0,
        }
    }
}

/// Everything the request handlers share.
#[derive(Debug)]
struct Ctx {
    batcher: Batcher,
    registry: SweepRegistry,
    metrics: Arc<ServerMetrics>,
    started: Instant,
}

/// A bound (but not yet running) server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    ctx: Arc<Ctx>,
    model: ServeModel,
    reactor_config: ReactorConfig,
    dispatch_threads: usize,
}

impl Server {
    /// Binds the listen socket and starts the batching dispatcher.
    ///
    /// # Errors
    ///
    /// Returns the bind error (address in use, permission, ...).
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let addr: &str = if config.addr.is_empty() {
            "127.0.0.1:7878"
        } else {
            &config.addr
        };
        let listener = TcpListener::bind(addr)?;
        // Make the Fleet backend runnable in-process: explore's backend
        // enum can name it, but only the fabric crate knows how to run it.
        // Installing here means any server (frontier or worker) can also
        // act as a fleet client of further workers.
        sigcomp_fabric::install();
        let metrics = Arc::new(ServerMetrics::default());
        // Alias the latency histogram into the process-wide observability
        // registry so GET /metrics.json exports it alongside the explore
        // counters. Only bound servers register — standalone ServerMetrics
        // (unit tests) stay isolated.
        metrics.register_global();
        let registry = if config.finished_tickets == 0 {
            SweepRegistry::default()
        } else {
            SweepRegistry::with_capacity(config.finished_tickets)
        };
        let ctx = Arc::new(Ctx {
            batcher: Batcher::new(config.batch, Arc::clone(&metrics)),
            registry,
            metrics,
            started: Instant::now(),
        });
        Ok(Server {
            listener,
            ctx,
            model: config.model,
            reactor_config: ReactorConfig {
                workers: config.reactor_workers,
                max_conns: config.max_conns,
                read_deadline: config.read_deadline,
                write_deadline: Duration::ZERO,
                keep_alive: config.keep_alive,
            },
            dispatch_threads: if config.dispatch_threads == 0 {
                DEFAULT_DISPATCH_THREADS
            } else {
                config.dispatch_threads
            },
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Panics
    ///
    /// Panics if the socket has no local address, which cannot happen for a
    /// bound listener.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("listener is bound")
    }

    /// Runs the serve loop on the calling thread, forever (the CLI entry
    /// point).
    ///
    /// # Errors
    ///
    /// Returns only on a fatal listener error.
    pub fn run(self) -> io::Result<()> {
        let never = Arc::new(AtomicBool::new(false));
        self.serve(&never)
    }

    /// Runs the serve loop on a background thread and returns a handle that
    /// can stop it — the embedding used by tests and the load-generator
    /// example.
    #[must_use]
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("sigcomp-serve-accept".into())
                .spawn(move || self.serve(&stop))
                .expect("spawning the accept thread")
        };
        ServerHandle {
            addr,
            stop,
            thread: Some(thread),
        }
    }

    fn serve(self, stop: &Arc<AtomicBool>) -> io::Result<()> {
        match self.model {
            ServeModel::Reactor => {
                let pool = DispatchPool::start(Arc::clone(&self.ctx), self.dispatch_threads);
                let handler: Arc<dyn Handler> = Arc::new(ServeHandler {
                    ctx: Arc::clone(&self.ctx),
                    pool: Arc::clone(&pool.queue),
                });
                let mut reactor =
                    Reactor::start(&self.reactor_config, handler, Arc::clone(&self.ctx.metrics));
                let result = loop {
                    let (stream, _) = match self.listener.accept() {
                        Ok(accepted) => accepted,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) => break Err(e),
                    };
                    if stop.load(Ordering::SeqCst) {
                        break Ok(());
                    }
                    reactor.accept(stream);
                };
                reactor.shutdown();
                pool.shutdown();
                result
            }
            ServeModel::ThreadPerConn => accept_loop_threaded(&self.listener, &self.ctx, stop),
        }
    }
}

/// A running background server. Dropping the handle shuts the server down.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<io::Result<()>>>,
}

impl ServerHandle {
    /// The server's bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the serve loop and joins the server thread. In-flight
    /// dispatched requests finish on the dispatch pool's (detached)
    /// threads; open reactor connections are closed.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

// ---------------------------------------------------------------------------
// Reactor dispatch: inline fast paths + a bounded pool for blocking routes.

/// The work queue feeding the dispatch pool.
#[derive(Debug, Default)]
struct DispatchQueue {
    state: Mutex<DispatchState>,
    ready: Condvar,
}

#[derive(Debug, Default)]
struct DispatchState {
    jobs: VecDeque<(Request, Completion)>,
    shutdown: bool,
}

impl DispatchQueue {
    fn push(&self, request: Request, completion: Completion) {
        let mut state = self.state.lock().expect("dispatch queue poisoned");
        if state.shutdown {
            completion.send(Response::error(503, "server is shutting down"));
            return;
        }
        state.jobs.push_back((request, completion));
        drop(state);
        self.ready.notify_one();
    }
}

/// A fixed pool of threads running the simulation-bound routes. Threads
/// are detached on shutdown (mirroring the legacy model's detached
/// connection threads): they finish their in-flight request and exit.
#[derive(Debug)]
struct DispatchPool {
    queue: Arc<DispatchQueue>,
}

impl DispatchPool {
    fn start(ctx: Arc<Ctx>, threads: usize) -> DispatchPool {
        let queue = Arc::new(DispatchQueue::default());
        for i in 0..threads.max(1) {
            let queue = Arc::clone(&queue);
            let ctx = Arc::clone(&ctx);
            let spawned = std::thread::Builder::new()
                .name(format!("sigcomp-serve-dispatch-{i}"))
                .spawn(move || loop {
                    let job = {
                        let mut state = queue.state.lock().expect("dispatch queue poisoned");
                        loop {
                            if let Some(job) = state.jobs.pop_front() {
                                break Some(job);
                            }
                            if state.shutdown {
                                break None;
                            }
                            state = queue.ready.wait(state).expect("dispatch queue poisoned");
                        }
                    };
                    let Some((request, completion)) = job else {
                        return;
                    };
                    completion.send(route(&ctx, &request));
                });
            if let Err(e) = spawned {
                eprintln!("sigcomp-serve: could not spawn a dispatch thread: {e}");
            }
        }
        DispatchPool { queue }
    }

    fn shutdown(self) {
        let mut state = self.queue.state.lock().expect("dispatch queue poisoned");
        state.shutdown = true;
        drop(state);
        self.queue.ready.notify_all();
    }
}

/// The reactor's request handler: answer cheap routes inline on the
/// event-loop worker, offload anything that can block on a simulation.
#[derive(Debug)]
struct ServeHandler {
    ctx: Arc<Ctx>,
    pool: Arc<DispatchQueue>,
}

impl Handler for ServeHandler {
    fn handle(&self, request: Request, completion: Completion) {
        match fast_route(&self.ctx, &request) {
            Some(response) => completion.send(response),
            None => self.pool.push(request, completion),
        }
    }
}

/// Routes that never block: answered inline on the reactor worker.
/// `None` means "this can block — dispatch it".
fn fast_route(ctx: &Arc<Ctx>, request: &Request) -> Option<Response> {
    match (request.method.as_str(), request.path.as_str()) {
        // A memoized /simulate is the hot path at saturation: answer it
        // without leaving the event loop. Parse failures are also final —
        // no reason to burn a dispatch thread on them.
        ("POST", "/simulate") => match parse_body(request) {
            Ok(doc) => match job_spec_from_json(&doc) {
                Ok((spec, node)) => ctx
                    .batcher
                    .try_memo(spec)
                    .map(|result| Response::json(200, simulate_response(&spec, &result, node))),
                Err(message) => Some(Response::error(400, &message)),
            },
            Err(response) => Some(response),
        },
        // Sync sweeps and fleet dispatches block on the batcher; async
        // sweeps spawn a thread — all pool work.
        ("POST", "/sweep" | "/fleet/dispatch") => None,
        // Everything else — health, metrics, fleet registration,
        // heartbeats, ticket polls, 404/405 — is a lock-light lookup.
        _ => Some(route(ctx, request)),
    }
}

// ---------------------------------------------------------------------------
// The legacy thread-per-connection model (ServeModel::ThreadPerConn): one
// blocking thread and one request per connection. This is the measured
// baseline the saturation bench compares the reactor against.

fn accept_loop_threaded(
    listener: &TcpListener,
    ctx: &Arc<Ctx>,
    stop: &Arc<AtomicBool>,
) -> io::Result<()> {
    let gate = Arc::new(ConnGate::default());
    loop {
        let (stream, _) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        // One thread per connection, bounded by the gate: connections are
        // short-lived (one request each) and the expensive part is
        // serialized through the batcher anyway. Blocking here at the cap
        // pushes further clients into the kernel backlog.
        let permit = gate.acquire();
        let ctx = Arc::clone(ctx);
        let spawned = std::thread::Builder::new()
            .name("sigcomp-serve-conn".into())
            .spawn(move || {
                let _permit = permit;
                handle_connection(stream, &ctx);
            });
        if let Err(e) = spawned {
            // Out of threads: the closure (and with it the stream and the
            // permit) is dropped, so the client sees a prompt connection
            // reset instead of a timeout; log the cause server-side.
            eprintln!("sigcomp-serve: could not spawn a connection thread: {e}");
        }
    }
}

fn handle_connection(stream: TcpStream, ctx: &Arc<Ctx>) {
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let started = Instant::now();
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let response = match read_request(&mut reader) {
        Ok(request) => route(ctx, &request),
        // The peer connected and went away (e.g. a health probe or the
        // shutdown wake-up): nothing to answer, nothing to count.
        Err(HttpError::Closed) => return,
        Err(e) => Response::error(e.status(), &e.to_string()),
    };
    ServerMetrics::incr(&ctx.metrics.http_requests);
    match response.status {
        200..=299 => ServerMetrics::incr(&ctx.metrics.http_2xx),
        400..=499 => ServerMetrics::incr(&ctx.metrics.http_4xx),
        _ => ServerMetrics::incr(&ctx.metrics.http_5xx),
    }
    let mut stream = stream;
    let _ = response.write_to(&mut stream);
    ctx.metrics.observe_latency(started.elapsed());
}

/// Maps one request to one response. Pure routing — no socket I/O — so the
/// whole surface is unit-testable without a listener.
fn route(ctx: &Arc<Ctx>, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::json(200, "{\"status\": \"ok\"}\n"),
        ("GET", "/metrics") => Response::json(
            200,
            ctx.metrics.to_json(
                ctx.batcher.queue_depth(),
                ctx.batcher.memo_len(),
                ctx.started.elapsed(),
                &sigcomp_explore::cache_stats(),
                &pool::global().to_json(DEFAULT_LIVENESS_TTL),
            ),
        ),
        // The full observability registry — every counter, gauge, and
        // histogram in the process (explore's cache/replay metrics
        // included), in sigcomp_obs::Snapshot::to_json form.
        ("GET", "/metrics.json") => Response::json(200, sigcomp_obs::global().snapshot().to_json()),
        ("POST", "/simulate") => match parse_body(request) {
            Ok(doc) => match job_spec_from_json(&doc) {
                Ok((spec, node)) => match ctx.batcher.submit(spec) {
                    Ok(result) => Response::json(200, simulate_response(&spec, &result, node)),
                    Err(e) => submit_error_response(ctx, e),
                },
                Err(message) => Response::error(400, &message),
            },
            Err(response) => response,
        },
        ("POST", "/sweep") => match parse_body(request) {
            Ok(doc) => match sweep_spec_from_json(&doc) {
                Ok((spec, sync)) => handle_sweep(ctx, &spec, sync),
                Err(message) => Response::error(400, &message),
            },
            Err(response) => response,
        },
        ("POST", "/register") => match body_text(request) {
            Ok(text) => match proto::parse_register(text) {
                Ok((addr, capacity)) => {
                    pool::global().register(&addr, capacity);
                    Response::json(200, "{\"status\": \"ok\"}\n")
                }
                Err(message) => Response::error(400, &message),
            },
            Err(response) => response,
        },
        ("POST", "/heartbeat") => match body_text(request) {
            Ok(text) => match proto::parse_heartbeat(text) {
                Ok((addr, capacity, obs)) => {
                    pool::global().heartbeat(&addr, capacity, obs);
                    Response::json(200, "{\"status\": \"ok\"}\n")
                }
                Err(message) => Response::error(400, &message),
            },
            Err(response) => response,
        },
        ("POST", "/fleet/dispatch") => match body_text(request) {
            Ok(text) => match proto::parse_dispatch(text) {
                Ok(jobs) => handle_fleet_dispatch(ctx, &jobs),
                Err(message) => Response::error(400, &message),
            },
            Err(response) => response,
        },
        ("GET", "/fleet") => Response::json(200, pool::global().to_json(DEFAULT_LIVENESS_TTL)),
        ("GET", path) if path.starts_with("/jobs/") => {
            match path["/jobs/".len()..].parse::<u64>() {
                Ok(id) => match ctx.registry.get(id) {
                    None => Response::error(404, &format!("no such job {id}")),
                    Some(SweepState::Running) => Response::json(200, "{\"status\": \"running\"}\n"),
                    Some(SweepState::Done(result)) => Response::json(200, result),
                    Some(SweepState::Failed(reason)) => Response::error(500, &reason),
                },
                Err(_) => Response::error(400, "job ids are decimal integers"),
            }
        }
        (
            _,
            "/healthz" | "/metrics" | "/metrics.json" | "/simulate" | "/sweep" | "/register"
            | "/heartbeat" | "/fleet/dispatch" | "/fleet",
        ) => Response::error(405, "method not allowed"),
        _ => Response::error(404, "no such endpoint"),
    }
}

fn handle_sweep(ctx: &Arc<Ctx>, spec: &sigcomp_explore::SweepSpec, sync: bool) -> Response {
    ServerMetrics::incr(&ctx.metrics.sweeps_submitted);
    let jobs = spec.enumerate();
    // The decoder guarantees a non-empty model axis (default paper-180nm).
    let node = spec.energy_model_axis()[0];
    if sync {
        return match run_sweep_through_batcher(ctx, &jobs, node) {
            Ok(body) => {
                ServerMetrics::incr(&ctx.metrics.sweeps_completed);
                Response::json(200, body)
            }
            Err(e) => {
                ServerMetrics::incr(&ctx.metrics.sweeps_failed);
                submit_error_response(ctx, e)
            }
        };
    }
    let id = ctx.registry.create();
    let ctx_for_job = Arc::clone(ctx);
    let spawned = std::thread::Builder::new()
        .name(format!("sigcomp-serve-sweep-{id}"))
        .spawn(
            move || match run_sweep_through_batcher(&ctx_for_job, &jobs, node) {
                Ok(body) => {
                    ServerMetrics::incr(&ctx_for_job.metrics.sweeps_completed);
                    ctx_for_job.registry.finish(id, body);
                }
                Err(e) => {
                    ServerMetrics::incr(&ctx_for_job.metrics.sweeps_failed);
                    ctx_for_job.registry.fail(id, e.to_string());
                }
            },
        );
    if spawned.is_err() {
        ServerMetrics::incr(&ctx.metrics.sweeps_failed);
        ctx.registry
            .fail(id, "could not spawn the sweep thread".into());
        return Response::error(500, "could not spawn the sweep thread");
    }
    Response::json(
        202,
        format!("{{\"job\": {id}, \"status\": \"running\", \"poll\": \"/jobs/{id}\"}}\n"),
    )
}

fn run_sweep_through_batcher(
    ctx: &Arc<Ctx>,
    jobs: &[sigcomp_explore::JobSpec],
    node: ProcessNode,
) -> Result<String, SubmitError> {
    let results = ctx.batcher.submit_many(jobs)?;
    let outcomes: Vec<JobOutcome> = jobs
        .iter()
        .zip(&results)
        .map(|(&spec, result)| JobOutcome {
            spec,
            metrics: result.metrics,
            from_cache: result.from_cache,
        })
        .collect();
    Ok(sweep_result_json(&outcomes, node))
}

/// Answers a frontier's job shard: runs it through the batcher (memo,
/// dedup, disk cache and all) and reports each job's metrics as verbatim
/// cache-entry text so the frontier can replicate them into its own store.
fn handle_fleet_dispatch(ctx: &Arc<Ctx>, jobs: &[sigcomp_explore::JobSpec]) -> Response {
    match ctx.batcher.submit_many(jobs) {
        Ok(results) => {
            let outcomes: Vec<DispatchOutcome> = jobs
                .iter()
                .zip(&results)
                .map(|(&spec, result)| DispatchOutcome {
                    spec,
                    metrics: result.metrics,
                    from_cache: result.from_cache,
                })
                .collect();
            let obs = sigcomp_obs::global().snapshot();
            // The report is the sigcomp-fleet wire text, not JSON; the
            // frontier's parser reads the body and ignores Content-Type.
            Response::json(200, proto::encode_report(&outcomes, &obs))
        }
        Err(e) => submit_error_response(ctx, e),
    }
}

fn submit_error_response(ctx: &Ctx, e: SubmitError) -> Response {
    match e {
        SubmitError::ShuttingDown => Response::error(503, &e.to_string()),
        // Shed, don't stall: the queue is full, so tell the client when to
        // come back instead of tying up a connection thread. The hint
        // tracks the backlog actually queued ahead of the retry.
        SubmitError::Overloaded => {
            Response::error(503, &e.to_string()).with_retry_after(ctx.batcher.retry_after_hint())
        }
        SubmitError::SimulationFailed => Response::error(500, &e.to_string()),
    }
}

fn body_text(request: &Request) -> Result<&str, Response> {
    std::str::from_utf8(&request.body)
        .map_err(|_| Response::error(400, "request body is not UTF-8"))
}

fn parse_body(request: &Request) -> Result<Json, Response> {
    let text = body_text(request)?;
    Json::parse(text).map_err(|e| Response::error(400, &format!("invalid JSON body: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_ctx() -> Arc<Ctx> {
        let metrics = Arc::new(ServerMetrics::default());
        Arc::new(Ctx {
            batcher: Batcher::new(
                BatchConfig {
                    sim_workers: Some(1),
                    ..BatchConfig::default()
                },
                Arc::clone(&metrics),
            ),
            registry: SweepRegistry::default(),
            metrics,
            started: Instant::now(),
        })
    }

    fn get(ctx: &Arc<Ctx>, path: &str) -> Response {
        route(
            ctx,
            &Request {
                method: "GET".into(),
                path: path.into(),
                headers: Vec::new(),
                body: Vec::new(),
            },
        )
    }

    fn post(ctx: &Arc<Ctx>, path: &str, body: &str) -> Response {
        route(
            ctx,
            &Request {
                method: "POST".into(),
                path: path.into(),
                headers: Vec::new(),
                body: body.as_bytes().to_vec(),
            },
        )
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let ctx = test_ctx();
        assert_eq!(get(&ctx, "/healthz").status, 200);
        assert_eq!(get(&ctx, "/nope").status, 404);
        assert_eq!(post(&ctx, "/healthz", "").status, 405);
        assert_eq!(get(&ctx, "/register").status, 405);
        assert_eq!(get(&ctx, "/heartbeat").status, 405);
        assert_eq!(get(&ctx, "/fleet/dispatch").status, 405);
        assert_eq!(post(&ctx, "/fleet", "").status, 405);
        assert_eq!(get(&ctx, "/jobs/abc").status, 400);
        assert_eq!(get(&ctx, "/jobs/42").status, 404);
    }

    #[test]
    fn register_and_heartbeat_feed_the_worker_pool() {
        let ctx = test_ctx();
        // The pool is process-global; a unique address keeps this test
        // independent of anything else that touches it.
        let addr = "serve-route-test.invalid:19001";
        let r = post(&ctx, "/register", &proto::encode_register(addr, 4));
        assert_eq!(r.status, 200, "{}", r.body);
        let mut obs = sigcomp_obs::Snapshot::default();
        obs.parse_wire_line("counter route.test.beats 1").unwrap();
        let r = post(&ctx, "/heartbeat", &proto::encode_heartbeat(addr, 4, &obs));
        assert_eq!(r.status, 200, "{}", r.body);
        assert_eq!(post(&ctx, "/register", "nonsense").status, 400);
        assert_eq!(post(&ctx, "/heartbeat", "nonsense").status, 400);
        let fleet = get(&ctx, "/fleet");
        assert_eq!(fleet.status, 200);
        let doc = Json::parse(&fleet.body).unwrap();
        let workers = doc.get("workers").and_then(Json::as_arr).unwrap();
        let me = workers
            .iter()
            .find(|w| w.get("addr").and_then(Json::as_str) == Some(addr))
            .expect("registered worker listed");
        assert_eq!(me.get("heartbeats").and_then(Json::as_u64), Some(1));
        assert_eq!(me.get("live").and_then(Json::as_bool), Some(true));
        // /metrics embeds the same pool document as its fleet section.
        let metrics = get(&ctx, "/metrics");
        assert_eq!(metrics.status, 200);
        let doc = Json::parse(&metrics.body).unwrap();
        assert!(doc.get("fleet").and_then(|f| f.get("workers")).is_some());
    }

    #[test]
    fn fleet_dispatch_round_trips_the_wire_protocol() {
        use std::collections::HashSet;
        let ctx = test_ctx();
        let spec = sigcomp_explore::JobSpec {
            scheme: sigcomp::ExtScheme::ThreeBit,
            org: sigcomp_pipeline::OrgKind::ByteSerial,
            workload: sigcomp_workloads::suite_names()[0],
            size: sigcomp_workloads::WorkloadSize::Tiny,
            mem: sigcomp_explore::MemProfile::Paper,
            source: sigcomp_explore::TraceSource::Kernel,
        };
        let r = post(&ctx, "/fleet/dispatch", &proto::encode_dispatch(&[spec]));
        assert_eq!(r.status, 200, "{}", r.body);
        let expected: HashSet<u64> = [spec.job_id()].into();
        let report = proto::parse_report(&r.body, &expected).expect("verifiable report");
        assert_eq!(report.jobs.len(), 1);
        assert_eq!(report.entries.len(), 1);
        assert_eq!(post(&ctx, "/fleet/dispatch", "garbage").status, 400);
    }

    #[test]
    fn simulate_rejects_bad_bodies_cleanly() {
        let ctx = test_ctx();
        let r = post(&ctx, "/simulate", "{not json");
        assert_eq!(r.status, 400);
        assert!(r.body.contains("invalid JSON body"));
        let r = post(&ctx, "/simulate", "{\"workload\": \"nope\"}");
        assert_eq!(r.status, 400);
        assert!(r.body.contains("unknown workload"));
        let r = post(&ctx, "/sweep", "{\"orgs\": [42]}");
        assert_eq!(r.status, 400);
        assert!(r.body.contains("array of strings"));
        let r = post(
            &ctx,
            "/simulate",
            "{\"workload\": \"rawcaudio\", \"energy_model\": \"3nm\"}",
        );
        assert_eq!(r.status, 400);
        assert!(r.body.contains("unknown energy model"), "{}", r.body);
    }

    #[test]
    fn simulate_honors_the_requested_energy_model() {
        let ctx = test_ctx();
        let r = post(
            &ctx,
            "/simulate",
            "{\"workload\": \"rawcaudio\", \"size\": \"tiny\", \
             \"energy_model\": \"modern-7nm\"}",
        );
        assert_eq!(r.status, 200, "{}", r.body);
        let doc = Json::parse(&r.body).unwrap();
        assert_eq!(
            doc.get("energy_model").and_then(Json::as_str),
            Some("modern-7nm")
        );
        assert!(doc.get("total_energy_saving").is_some(), "{}", r.body);
        assert!(doc.get("leakage_saving").is_some(), "{}", r.body);

        let r = post(
            &ctx,
            "/sweep",
            "{\"workloads\": [\"rawcaudio\"], \"sizes\": [\"tiny\"], \
             \"orgs\": [\"byte-serial\"], \"energy_model\": \"generic-45nm\", \
             \"sync\": true}",
        );
        assert_eq!(r.status, 200, "{}", r.body);
        let doc = Json::parse(&r.body).unwrap();
        assert_eq!(
            doc.get("energy_model").and_then(Json::as_str),
            Some("generic-45nm")
        );
    }

    #[test]
    fn simulate_and_sync_sweep_round_trip() {
        let ctx = test_ctx();
        let r = post(
            &ctx,
            "/simulate",
            "{\"workload\": \"rawcaudio\", \"size\": \"tiny\"}",
        );
        assert_eq!(r.status, 200, "{}", r.body);
        let doc = Json::parse(&r.body).unwrap();
        assert!(doc.get("cycles").and_then(Json::as_u64).unwrap() > 0);

        let r = post(
            &ctx,
            "/sweep",
            "{\"workloads\": [\"rawcaudio\"], \"sizes\": [\"tiny\"], \
             \"orgs\": [\"baseline32\", \"byte-serial\"], \"sync\": true}",
        );
        assert_eq!(r.status, 200, "{}", r.body);
        let doc = Json::parse(&r.body).unwrap();
        assert_eq!(doc.get("jobs").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn async_sweep_finishes_and_is_pollable() {
        let ctx = test_ctx();
        let r = post(
            &ctx,
            "/sweep",
            "{\"workloads\": [\"rawcaudio\"], \"sizes\": [\"tiny\"], \
             \"orgs\": [\"baseline32\"]}",
        );
        assert_eq!(r.status, 202, "{}", r.body);
        let id = Json::parse(&r.body)
            .unwrap()
            .get("job")
            .and_then(Json::as_u64)
            .unwrap();
        // Poll until the background sweep completes.
        let deadline = Instant::now() + Duration::from_mins(1);
        loop {
            let r = get(&ctx, &format!("/jobs/{id}"));
            assert_eq!(r.status, 200, "{}", r.body);
            let doc = Json::parse(&r.body).unwrap();
            match doc.get("status").and_then(Json::as_str) {
                Some("running") => {
                    assert!(Instant::now() < deadline, "sweep never finished");
                    std::thread::sleep(Duration::from_millis(20));
                }
                Some("done") => {
                    assert_eq!(doc.get("jobs").and_then(Json::as_u64), Some(1));
                    break;
                }
                other => panic!("unexpected status {other:?} in {}", r.body),
            }
        }
    }

    #[test]
    fn the_memo_fast_path_agrees_with_the_full_route() {
        let ctx = test_ctx();
        let body = "{\"workload\": \"rawcaudio\", \"size\": \"tiny\"}";
        let request = Request {
            method: "POST".into(),
            path: "/simulate".into(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        };
        // Cold: the fast path must miss (no memo entry yet) ...
        assert_eq!(fast_route(&ctx, &request), None);
        let cold = route(&ctx, &request);
        assert_eq!(cold.status, 200, "{}", cold.body);
        // ... warm: it must hit and answer byte-identically to what the
        // full route would say for the same (now memoized) repeat.
        let warm = route(&ctx, &request);
        let fast = fast_route(&ctx, &request).expect("memoized answer");
        assert_eq!(fast.status, 200);
        assert_eq!(fast.body, warm.body, "fast path must be bit-identical");
        assert!(fast.body.contains("\"from_cache\": true"), "{}", fast.body);
        // Decode errors are final inline answers, not pool work.
        let bad = Request {
            body: b"{not json".to_vec(),
            ..request.clone()
        };
        assert_eq!(fast_route(&ctx, &bad).map(|r| r.status), Some(400));
        // Sweeps always go to the pool.
        let sweep = Request {
            path: "/sweep".into(),
            ..request
        };
        assert_eq!(fast_route(&ctx, &sweep), None);
    }
}
