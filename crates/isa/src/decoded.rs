//! Decode-once trace arenas.
//!
//! Replay is the hot loop of every sweep: the same `.sctrace` stream is fed
//! through many scheme × organization configurations. [`DecodedTrace`]
//! decodes the stream exactly once into a flat, cache-friendly
//! structure-of-arrays — contiguous `pc`/`word`/`flags`/`instr` lanes plus a
//! shared side table holding the optional per-record fields — so every job
//! that replays the trace walks dense arrays instead of re-reading the file
//! or chasing `Option`-laden [`ExecRecord`]s. The arena is built behind an
//! `Arc` by its callers and shared across a whole sweep.
//!
//! Reconstruction is exact: [`DecodedTrace::get`] returns the same
//! [`ExecRecord`] (bit for bit, `seq` included) that the streaming
//! [`TraceReader`] would have yielded, and the adversarial inputs a reader
//! rejects are rejected here with the same named [`TraceFileError`]s.

use crate::instr::Instruction;
use crate::reg::Reg;
use crate::trace::{BranchOutcome, ExecRecord, MemAccess, Trace};
use crate::tracefile::{
    TraceFileError, TraceReader, FLAG_BRANCH, FLAG_MEM, FLAG_RS, FLAG_RT, FLAG_STORE, FLAG_TAKEN,
    FLAG_WB,
};
use std::io::BufRead;
use std::path::Path;

/// Number of side-table words a record with the given flag byte occupies:
/// `rs` and `rt` one word each, writeback two (register, value), memory
/// three (address, width, value), branch one (target).
const SIDE_WORDS: [u8; 256] = {
    let mut table = [0u8; 256];
    let mut f = 0usize;
    while f < 256 {
        let flags = f as u8;
        let mut words = 0u8;
        if flags & FLAG_RS != 0 {
            words += 1;
        }
        if flags & FLAG_RT != 0 {
            words += 1;
        }
        if flags & FLAG_WB != 0 {
            words += 2;
        }
        if flags & FLAG_MEM != 0 {
            words += 3;
        }
        if flags & FLAG_BRANCH != 0 {
            words += 1;
        }
        table[f] = words;
        f += 1;
    }
    table
};

/// A fully decoded trace in structure-of-arrays form.
///
/// The fixed per-record lanes (`pc`, `word`, `flags`, pre-decoded `instr`)
/// are dense vectors indexed by sequence number; the variable optional
/// fields live in one shared `side` pool addressed by `side_start`.
#[derive(Debug, Clone, Default)]
pub struct DecodedTrace {
    pc: Vec<u32>,
    word: Vec<u32>,
    flags: Vec<u8>,
    instr: Vec<Instruction>,
    side_start: Vec<u32>,
    side: Vec<u32>,
}

impl DecodedTrace {
    /// Builds an arena from an in-memory [`Trace`] (the interpreter's
    /// output). Field layout mirrors the `.sctrace` record encoding.
    #[must_use]
    pub fn from_trace(trace: &Trace) -> Self {
        let mut arena = DecodedTrace {
            pc: Vec::with_capacity(trace.len()),
            word: Vec::with_capacity(trace.len()),
            flags: Vec::with_capacity(trace.len()),
            instr: Vec::with_capacity(trace.len()),
            side_start: Vec::with_capacity(trace.len()),
            side: Vec::new(),
        };
        for rec in trace {
            arena.push(rec);
        }
        arena
    }

    /// Drains a streaming reader into an arena. Completing the drain proves
    /// the stream intact (record count, flag/field validation, digest).
    ///
    /// # Errors
    ///
    /// Any stream violation, with the same named error the streaming path
    /// yields.
    pub fn from_reader<R: BufRead>(mut reader: TraceReader<R>) -> Result<Self, TraceFileError> {
        let declared = usize::try_from(reader.records()).unwrap_or(0);
        let mut arena = DecodedTrace {
            pc: Vec::with_capacity(declared),
            word: Vec::with_capacity(declared),
            flags: Vec::with_capacity(declared),
            instr: Vec::with_capacity(declared),
            side_start: Vec::with_capacity(declared),
            side: Vec::new(),
        };
        while let Some(rec) = reader.next_record()? {
            arena.push(&rec);
        }
        Ok(arena)
    }

    /// Opens and fully decodes a `.sctrace` file.
    ///
    /// # Errors
    ///
    /// Fails like [`TraceReader::open`] plus any stream violation.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceFileError> {
        Self::from_reader(TraceReader::open(path)?)
    }

    fn push(&mut self, rec: &ExecRecord) {
        let mut flags = 0u8;
        self.pc.push(rec.pc);
        self.word.push(rec.word);
        self.instr.push(rec.instr);
        self.side_start
            .push(u32::try_from(self.side.len()).expect("side table exceeds u32 indexing"));
        if let Some(v) = rec.rs_value {
            flags |= FLAG_RS;
            self.side.push(v);
        }
        if let Some(v) = rec.rt_value {
            flags |= FLAG_RT;
            self.side.push(v);
        }
        if let Some((reg, value)) = rec.writeback {
            flags |= FLAG_WB;
            self.side.push(u32::from(reg.index()));
            self.side.push(value);
        }
        if let Some(mem) = rec.mem {
            flags |= FLAG_MEM;
            if mem.is_store {
                flags |= FLAG_STORE;
            }
            self.side.push(mem.addr);
            self.side.push(u32::from(mem.width));
            self.side.push(mem.value);
        }
        if let Some(branch) = rec.branch {
            flags |= FLAG_BRANCH;
            if branch.taken {
                flags |= FLAG_TAKEN;
            }
            self.side.push(branch.target);
        }
        self.flags.push(flags);
    }

    /// Number of records in the arena.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pc.len()
    }

    /// Returns `true` if the arena holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pc.is_empty()
    }

    /// Reconstructs record `index` exactly as the streaming reader would
    /// have yielded it (`seq` is the index).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds, like slice indexing.
    #[must_use]
    pub fn get(&self, index: usize) -> ExecRecord {
        let flags = self.flags[index];
        let mut at = self.side_start[index] as usize;
        let mut side_field = || {
            let v = self.side[at];
            at += 1;
            v
        };
        let rs_value = (flags & FLAG_RS != 0).then(&mut side_field);
        let rt_value = (flags & FLAG_RT != 0).then(&mut side_field);
        let writeback = (flags & FLAG_WB != 0).then(|| {
            let reg = Reg::new(side_field() as u8);
            (reg, side_field())
        });
        let mem = (flags & FLAG_MEM != 0).then(|| {
            let addr = side_field();
            let width = side_field() as u8;
            MemAccess {
                addr,
                width,
                is_store: flags & FLAG_STORE != 0,
                value: side_field(),
            }
        });
        let branch = (flags & FLAG_BRANCH != 0).then(|| BranchOutcome {
            taken: flags & FLAG_TAKEN != 0,
            target: side_field(),
        });
        debug_assert_eq!(
            at - self.side_start[index] as usize,
            usize::from(SIDE_WORDS[flags as usize]),
            "side-table cursor must land exactly on the record's field count"
        );
        ExecRecord {
            seq: index as u64,
            pc: self.pc[index],
            word: self.word[index],
            instr: self.instr[index],
            rs_value,
            rt_value,
            writeback,
            mem,
            branch,
        }
    }

    /// Iterates the reconstructed records in sequence order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = ExecRecord> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ProgramBuilder;
    use crate::interp::Interpreter;
    use crate::reg;
    use crate::tracefile::{TraceWriter, RECORD_LEN};
    use std::io::Cursor;

    fn sample_trace() -> Trace {
        let mut b = ProgramBuilder::new();
        b.dlabel("buf");
        b.words(&[0, 0]);
        b.li(reg::T0, 0);
        b.li(reg::T1, 5);
        b.label("loop");
        b.la(reg::A0, "buf");
        b.sw(reg::T0, reg::A0, 0);
        b.lw(reg::T2, reg::A0, 0);
        b.addiu(reg::T0, reg::T0, 1);
        b.bne(reg::T0, reg::T1, "loop");
        b.halt();
        Interpreter::new(&b.assemble().unwrap())
            .run(10_000)
            .unwrap()
    }

    fn encoded(trace: &Trace) -> Vec<u8> {
        let mut writer = TraceWriter::new();
        for rec in trace {
            writer.push(rec).unwrap();
        }
        let mut bytes = Vec::new();
        writer.finish(&mut bytes).unwrap();
        bytes
    }

    #[test]
    fn side_word_table_is_consistent_with_record_lengths() {
        // Every valid flag byte's record length is the 9 fixed bytes plus
        // its side fields; widths differ per field (wb is 5 bytes / 2 words,
        // mem 9 bytes / 3 words), so check via an exhaustive reconstruction.
        for flags in 0u16..256 {
            let flags = flags as u8;
            if RECORD_LEN[flags as usize] == 0 {
                continue;
            }
            let mut words = 0u8;
            for (bit, w) in [
                (FLAG_RS, 1),
                (FLAG_RT, 1),
                (FLAG_WB, 2),
                (FLAG_MEM, 3),
                (FLAG_BRANCH, 1),
            ] {
                if flags & bit != 0 {
                    words += w;
                }
            }
            assert_eq!(SIDE_WORDS[flags as usize], words, "flags {flags:#04x}");
        }
    }

    #[test]
    fn arena_reconstructs_records_bit_identically() {
        let trace = sample_trace();
        let arena = DecodedTrace::from_trace(&trace);
        assert_eq!(arena.len(), trace.len());
        assert!(!arena.is_empty());
        for (i, rec) in trace.iter().enumerate() {
            assert_eq!(&arena.get(i), rec, "record {i}");
        }
        let collected: Vec<ExecRecord> = arena.iter().collect();
        assert_eq!(collected.as_slice(), trace.records());
    }

    #[test]
    fn arena_from_reader_matches_arena_from_trace() {
        let trace = sample_trace();
        let bytes = encoded(&trace);
        let reader = TraceReader::new(Cursor::new(&bytes)).unwrap();
        let arena = DecodedTrace::from_reader(reader).unwrap();
        assert_eq!(arena.len(), trace.len());
        for (i, rec) in trace.iter().enumerate() {
            assert_eq!(&arena.get(i), rec, "record {i}");
        }
    }

    #[test]
    fn empty_trace_builds_an_empty_arena() {
        let arena = DecodedTrace::from_trace(&Trace::new());
        assert!(arena.is_empty());
        assert_eq!(arena.iter().count(), 0);
    }

    #[test]
    fn adversarial_inputs_fail_with_the_streaming_reader_errors() {
        let trace = sample_trace();
        let bytes = encoded(&trace);

        // Truncated payload: cut the stream mid-record.
        let cut = bytes.len() - 3;
        let reader = TraceReader::new(Cursor::new(&bytes[..cut])).unwrap();
        assert!(matches!(
            DecodedTrace::from_reader(reader),
            Err(TraceFileError::TruncatedRecord { .. })
        ));

        // Corrupt payload: flip a byte, digest must catch it.
        let mut corrupt = bytes.clone();
        let payload_at = corrupt.len() - 5;
        corrupt[payload_at] ^= 0xff;
        let reader = TraceReader::new(Cursor::new(&corrupt)).unwrap();
        let err = DecodedTrace::from_reader(reader).unwrap_err();
        assert!(
            matches!(
                err,
                TraceFileError::DigestMismatch { .. }
                    | TraceFileError::BadFlags { .. }
                    | TraceFileError::UndecodableWord { .. }
                    | TraceFileError::TruncatedRecord { .. }
                    | TraceFileError::TrailingBytes
                    | TraceFileError::BadRegister { .. }
                    | TraceFileError::BadWidth { .. }
            ),
            "corruption must surface as a named stream error, got {err}"
        );

        // Bad header: not a trace at all.
        assert!(matches!(
            TraceReader::new(Cursor::new(b"garbage".as_slice()))
                .map(DecodedTrace::from_reader)
                .map(|_| ()),
            Err(TraceFileError::BadMagic { .. })
        ));
    }
}
