//! Dynamic execution traces.
//!
//! The interpreter produces one [`ExecRecord`] per retired instruction. The
//! record captures everything the significance-compression activity models
//! and the pipeline timing simulators need: operand *values*, results,
//! effective addresses and branch outcomes.

use crate::instr::Instruction;
use crate::reg::Reg;

/// A memory access performed by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Effective address.
    pub addr: u32,
    /// Access width in bytes (1, 2 or 4).
    pub width: u8,
    /// `true` for stores, `false` for loads.
    pub is_store: bool,
    /// The value loaded (after extension) or stored.
    pub value: u32,
}

/// The outcome of a control-flow instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchOutcome {
    /// Whether the branch/jump redirected the program counter.
    pub taken: bool,
    /// The target address when taken.
    pub target: u32,
}

/// One retired instruction of a dynamic trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecRecord {
    /// Retirement sequence number (0-based).
    pub seq: u64,
    /// Program counter of the instruction.
    pub pc: u32,
    /// Raw instruction word.
    pub word: u32,
    /// Decoded instruction.
    pub instr: Instruction,
    /// Value of the `rs` operand if read.
    pub rs_value: Option<u32>,
    /// Value of the `rt` operand if read.
    pub rt_value: Option<u32>,
    /// Destination register and the value written to it, if any.
    pub writeback: Option<(Reg, u32)>,
    /// Memory access performed, if any.
    pub mem: Option<MemAccess>,
    /// Branch/jump outcome, if this is a control instruction.
    pub branch: Option<BranchOutcome>,
}

impl ExecRecord {
    /// The source operand values actually read from the register file.
    pub fn source_values(&self) -> impl Iterator<Item = u32> {
        [self.rs_value, self.rt_value].into_iter().flatten()
    }

    /// The value written back to the register file, if any.
    #[must_use]
    pub fn result_value(&self) -> Option<u32> {
        self.writeback.map(|(_, v)| v)
    }

    /// Whether this instruction is a taken control transfer.
    #[must_use]
    pub fn is_taken_branch(&self) -> bool {
        self.branch.is_some_and(|b| b.taken)
    }
}

/// A dynamic instruction trace: the sequence of retired instructions.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    records: Vec<ExecRecord>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, r: ExecRecord) {
        self.records.push(r);
    }

    /// Number of retired instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if no instructions were retired.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records as a slice.
    #[must_use]
    pub fn records(&self) -> &[ExecRecord] {
        &self.records
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, ExecRecord> {
        self.records.iter()
    }

    /// Fraction of instructions in the trace satisfying `pred`.
    pub fn fraction<F: Fn(&ExecRecord) -> bool>(&self, pred: F) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| pred(r)).count() as f64 / self.records.len() as f64
    }
}

impl FromIterator<ExecRecord> for Trace {
    fn from_iter<I: IntoIterator<Item = ExecRecord>>(iter: I) -> Self {
        Trace {
            records: iter.into_iter().collect(),
        }
    }
}

impl Extend<ExecRecord> for Trace {
    fn extend<I: IntoIterator<Item = ExecRecord>>(&mut self, iter: I) {
        self.records.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a ExecRecord;
    type IntoIter = std::slice::Iter<'a, ExecRecord>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl IntoIterator for Trace {
    type Item = ExecRecord;
    type IntoIter = std::vec::IntoIter<ExecRecord>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use crate::reg::{T0, T1, T2};

    fn record(seq: u64) -> ExecRecord {
        ExecRecord {
            seq,
            pc: 0x400000 + (seq as u32) * 4,
            word: 0,
            instr: Instruction::r3(Op::Addu, T0, T1, T2),
            rs_value: Some(5),
            rt_value: Some(7),
            writeback: Some((T0, 12)),
            mem: None,
            branch: None,
        }
    }

    #[test]
    fn trace_collects_and_iterates() {
        let t: Trace = (0..10).map(record).collect();
        assert_eq!(t.len(), 10);
        assert!(!t.is_empty());
        assert_eq!(t.iter().count(), 10);
        assert_eq!((&t).into_iter().count(), 10);
        assert_eq!(t.records()[3].seq, 3);
    }

    #[test]
    fn source_and_result_values() {
        let r = record(0);
        assert_eq!(r.source_values().collect::<Vec<_>>(), vec![5, 7]);
        assert_eq!(r.result_value(), Some(12));
        assert!(!r.is_taken_branch());
    }

    #[test]
    fn fraction_counts_matching_records() {
        let mut t = Trace::new();
        for i in 0..4 {
            let mut r = record(i);
            if i % 2 == 0 {
                r.branch = Some(BranchOutcome {
                    taken: true,
                    target: 0,
                });
            }
            t.push(r);
        }
        assert!((t.fraction(super::ExecRecord::is_taken_branch) - 0.5).abs() < 1e-12);
        assert_eq!(Trace::new().fraction(|_| true), 0.0);
    }

    #[test]
    fn extend_appends() {
        let mut t = Trace::new();
        t.extend((0..3).map(record));
        assert_eq!(t.len(), 3);
    }
}
