//! A sparse, page-based byte-addressable memory image.

use std::collections::BTreeMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u32 = (PAGE_SIZE as u32) - 1;

/// A sparse 32-bit byte-addressable memory.
///
/// Pages (4 KiB) are allocated on first touch; untouched memory reads as
/// zero. All multi-byte accesses are little-endian. This is the backing
/// store used by the [`Interpreter`](crate::Interpreter) and by the cache
/// hierarchy in `sigcomp-mem`.
///
/// ```
/// use sigcomp_isa::SparseMemory;
/// let mut m = SparseMemory::new();
/// m.write_word(0x1000_0000, 0xdead_beef);
/// assert_eq!(m.read_word(0x1000_0000), 0xdead_beef);
/// assert_eq!(m.read_byte(0x1000_0000), 0xef); // little-endian
/// assert_eq!(m.read_word(0x2000_0000), 0);    // untouched reads as zero
/// ```
#[derive(Debug, Clone, Default)]
pub struct SparseMemory {
    pages: BTreeMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl SparseMemory {
    /// Creates an empty memory image.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of 4 KiB pages that have been touched.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    fn page(&self, addr: u32) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_SHIFT)).map(|b| &**b)
    }

    fn page_mut(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads a single byte.
    #[must_use]
    pub fn read_byte(&self, addr: u32) -> u8 {
        self.page(addr)
            .map_or(0, |p| p[(addr & PAGE_MASK) as usize])
    }

    /// Writes a single byte.
    pub fn write_byte(&mut self, addr: u32, value: u8) {
        self.page_mut(addr)[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads a little-endian halfword. The address may be unaligned.
    #[must_use]
    pub fn read_half(&self, addr: u32) -> u16 {
        u16::from(self.read_byte(addr)) | (u16::from(self.read_byte(addr.wrapping_add(1))) << 8)
    }

    /// Writes a little-endian halfword.
    pub fn write_half(&mut self, addr: u32, value: u16) {
        self.write_byte(addr, (value & 0xff) as u8);
        self.write_byte(addr.wrapping_add(1), (value >> 8) as u8);
    }

    /// Reads a little-endian word. The address may be unaligned.
    #[must_use]
    pub fn read_word(&self, addr: u32) -> u32 {
        u32::from(self.read_half(addr)) | (u32::from(self.read_half(addr.wrapping_add(2))) << 16)
    }

    /// Writes a little-endian word.
    pub fn write_word(&mut self, addr: u32, value: u32) {
        self.write_half(addr, (value & 0xffff) as u16);
        self.write_half(addr.wrapping_add(2), (value >> 16) as u16);
    }

    /// Copies `bytes` into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_byte(addr.wrapping_add(i as u32), b);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    #[must_use]
    pub fn read_bytes(&self, addr: u32, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_byte(addr.wrapping_add(i as u32)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_and_words_are_little_endian() {
        let mut m = SparseMemory::new();
        m.write_word(0x100, 0x0403_0201);
        assert_eq!(m.read_byte(0x100), 0x01);
        assert_eq!(m.read_byte(0x103), 0x04);
        assert_eq!(m.read_half(0x100), 0x0201);
        assert_eq!(m.read_half(0x102), 0x0403);
    }

    #[test]
    fn untouched_memory_reads_zero() {
        let m = SparseMemory::new();
        assert_eq!(m.read_word(0xdead_0000), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn pages_allocate_on_write_only() {
        let mut m = SparseMemory::new();
        let _ = m.read_word(0x5000);
        assert_eq!(m.page_count(), 0);
        m.write_byte(0x5000, 1);
        assert_eq!(m.page_count(), 1);
        m.write_byte(0x5001, 2);
        assert_eq!(m.page_count(), 1);
        m.write_byte(0x2_5000, 3);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn cross_page_word_access() {
        let mut m = SparseMemory::new();
        m.write_word(0x0fff, 0xaabb_ccdd); // straddles a 4 KiB boundary
        assert_eq!(m.read_word(0x0fff), 0xaabb_ccdd);
    }

    #[test]
    fn bulk_read_write() {
        let mut m = SparseMemory::new();
        m.write_bytes(0x200, &[1, 2, 3, 4, 5]);
        assert_eq!(m.read_bytes(0x200, 5), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn wrapping_addresses_do_not_panic() {
        let mut m = SparseMemory::new();
        m.write_word(u32::MAX - 1, 0x1234_5678);
        assert_eq!(m.read_word(u32::MAX - 1), 0x1234_5678);
    }
}
