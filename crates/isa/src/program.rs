//! An assembled program: text segment, data segment and entry point.

use crate::instr::Instruction;
use crate::memory::SparseMemory;

/// Default base address of the text segment (matches the paper's MIPS-like
/// memory map with code in low memory).
pub const DEFAULT_TEXT_BASE: u32 = 0x0040_0000;

/// Default base address of the data segment. The paper notes that the data
/// segment base of its experimental framework is `0x1000_0000`, which is why
/// "internal zero bytes" addresses such as `10 00 00 09` are common; we use
/// the same base so address significance statistics behave the same way.
pub const DEFAULT_DATA_BASE: u32 = 0x1000_0000;

/// Default initial stack pointer.
pub const DEFAULT_STACK_TOP: u32 = 0x7fff_fff0;

/// An assembled program ready to be executed by the
/// [`Interpreter`](crate::Interpreter).
#[derive(Debug, Clone)]
pub struct Program {
    /// Base address of the text segment.
    pub text_base: u32,
    /// Encoded instruction words of the text segment.
    pub text: Vec<u32>,
    /// Base address of the data segment.
    pub data_base: u32,
    /// Initial contents of the data segment.
    pub data: Vec<u8>,
    /// Entry point (defaults to `text_base`).
    pub entry: u32,
    /// Initial stack pointer.
    pub stack_top: u32,
}

impl Program {
    /// Number of instructions in the text segment.
    #[must_use]
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Returns `true` if the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Address one past the last instruction of the text segment.
    #[must_use]
    pub fn text_end(&self) -> u32 {
        self.text_base + (self.text.len() as u32) * 4
    }

    /// Decodes the instruction at `pc`, if `pc` is inside the text segment.
    #[must_use]
    pub fn fetch(&self, pc: u32) -> Option<u32> {
        if pc < self.text_base || pc >= self.text_end() || !pc.is_multiple_of(4) {
            return None;
        }
        Some(self.text[((pc - self.text_base) / 4) as usize])
    }

    /// Builds a memory image containing the text and data segments.
    #[must_use]
    pub fn initial_memory(&self) -> SparseMemory {
        let mut m = SparseMemory::new();
        for (i, &w) in self.text.iter().enumerate() {
            m.write_word(self.text_base + (i as u32) * 4, w);
        }
        m.write_bytes(self.data_base, &self.data);
        m
    }

    /// Disassembles the text segment for debugging.
    #[must_use]
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (i, &w) in self.text.iter().enumerate() {
            let addr = self.text_base + (i as u32) * 4;
            let text = match Instruction::decode(w) {
                Ok(ins) => ins.to_string(),
                Err(_) => format!(".word {w:#010x}"),
            };
            out.push_str(&format!("{addr:#010x}: {text}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instruction;
    use crate::op::Op;
    use crate::reg::{T0, T1, T2};

    fn tiny_program() -> Program {
        Program {
            text_base: DEFAULT_TEXT_BASE,
            text: vec![
                Instruction::r3(Op::Addu, T0, T1, T2).encode(),
                Instruction::imm(Op::Addiu, T0, T0, 1).encode(),
            ],
            data_base: DEFAULT_DATA_BASE,
            data: vec![0xaa, 0xbb],
            entry: DEFAULT_TEXT_BASE,
            stack_top: DEFAULT_STACK_TOP,
        }
    }

    #[test]
    fn fetch_respects_bounds_and_alignment() {
        let p = tiny_program();
        assert!(p.fetch(p.text_base).is_some());
        assert!(p.fetch(p.text_base + 4).is_some());
        assert!(p.fetch(p.text_base + 8).is_none());
        assert!(p.fetch(p.text_base + 2).is_none());
        assert!(p.fetch(p.text_base - 4).is_none());
    }

    #[test]
    fn initial_memory_contains_text_and_data() {
        let p = tiny_program();
        let m = p.initial_memory();
        assert_eq!(m.read_word(p.text_base), p.text[0]);
        assert_eq!(m.read_byte(p.data_base), 0xaa);
        assert_eq!(m.read_byte(p.data_base + 1), 0xbb);
    }

    #[test]
    fn disassembly_lists_every_instruction() {
        let p = tiny_program();
        let d = p.disassemble();
        assert_eq!(d.lines().count(), 2);
        assert!(d.contains("addu"));
        assert!(d.contains("addiu"));
    }

    #[test]
    fn len_and_text_end() {
        let p = tiny_program();
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.text_end(), p.text_base + 8);
    }
}
