//! Portable on-disk dynamic traces (`.sctrace`).
//!
//! The simulation models are trace-driven: everything they need is a stream
//! of [`ExecRecord`]s. This module pins that stream down as a versioned,
//! portable file format so traces can be captured once (from the bundled
//! interpreter today, from an external MIPS tracer tomorrow) and replayed
//! bit-identically through every model.
//!
//! # Format
//!
//! A `.sctrace` file is a text header followed by a compact little-endian
//! binary record stream:
//!
//! ```text
//! sctrace 1                    magic + format version
//! records=1234                 number of records in the stream (decimal)
//! digest=0123456789abcdef      FNV-1a 64-bit digest of the record stream
//! source=rawcaudio             optional free-form metadata (key=value)
//! %%                           end of header
//! <records … exactly `records` of them, then end of file>
//! ```
//!
//! Each record is:
//!
//! ```text
//! flags: u8    bit 0  rs operand value present
//!              bit 1  rt operand value present
//!              bit 2  register writeback present
//!              bit 3  memory access present
//!              bit 4  branch outcome present
//!              bit 5  memory access is a store   (requires bit 3)
//!              bit 6  branch was taken           (requires bit 4)
//!              bit 7  reserved, must be zero
//! pc:    u32
//! word:  u32   raw instruction word; must decode, and the decoded
//!              instruction defines the record's `instr`
//! then, in order, only the fields whose flag bit is set:
//! rs_value: u32
//! rt_value: u32
//! writeback: reg u8 (1..=31), value u32
//! mem: addr u32, width u8 (1, 2 or 4), value u32
//! branch: target u32
//! ```
//!
//! Record sequence numbers are not stored: a record's `seq` is its index in
//! the stream, and the writer rejects traces whose records are not numbered
//! `0..len` (the interpreter always produces such traces).
//!
//! Every violation is a named [`TraceFileError`] — readers never panic on
//! malformed input — and the header digest makes any payload corruption
//! detectable before results are trusted.

use crate::error::DecodeError;
use crate::instr::Instruction;
use crate::reg::Reg;
use crate::trace::{BranchOutcome, ExecRecord, MemAccess, Trace};
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;

/// The first header line of every supported trace file.
pub const MAGIC: &str = "sctrace";
/// The format version this module reads and writes.
pub const FORMAT_VERSION: u32 = 1;
/// Header line separating the text header from the record stream.
const HEADER_END: &str = "%%";

pub(crate) const FLAG_RS: u8 = 1 << 0;
pub(crate) const FLAG_RT: u8 = 1 << 1;
pub(crate) const FLAG_WB: u8 = 1 << 2;
pub(crate) const FLAG_MEM: u8 = 1 << 3;
pub(crate) const FLAG_BRANCH: u8 = 1 << 4;
pub(crate) const FLAG_STORE: u8 = 1 << 5;
pub(crate) const FLAG_TAKEN: u8 = 1 << 6;
pub(crate) const FLAG_RESERVED: u8 = 1 << 7;

/// Encoded length (flag byte included) of a record for every possible flag
/// byte; `0` marks the invalid combinations (reserved bit set, `store`
/// without `mem`, `taken` without `branch`). Indexed once per record, this
/// replaces the per-field branching of the old streaming decoder.
pub(crate) const RECORD_LEN: [u8; 256] = {
    let mut table = [0u8; 256];
    let mut f = 0usize;
    while f < 256 {
        let flags = f as u8;
        let valid = flags & FLAG_RESERVED == 0
            && !(flags & FLAG_STORE != 0 && flags & FLAG_MEM == 0)
            && !(flags & FLAG_TAKEN != 0 && flags & FLAG_BRANCH == 0);
        if valid {
            // flags u8 + pc u32 + word u32 ...
            let mut len = 9u8;
            if flags & FLAG_RS != 0 {
                len += 4;
            }
            if flags & FLAG_RT != 0 {
                len += 4;
            }
            if flags & FLAG_WB != 0 {
                len += 5;
            }
            if flags & FLAG_MEM != 0 {
                len += 9;
            }
            if flags & FLAG_BRANCH != 0 {
                len += 4;
            }
            table[f] = len;
        }
        f += 1;
    }
    table
};

/// The longest possible encoded record (every optional field present).
const MAX_RECORD: usize = 35;

/// Size of the reader's block buffer. Must hold at least one whole record.
const BLOCK: usize = 64 * 1024;
const _: () = assert!(BLOCK >= MAX_RECORD);

/// Everything that can go wrong while reading or writing a `.sctrace` file.
#[derive(Debug)]
pub enum TraceFileError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The first line is not `sctrace <version>`.
    BadMagic {
        /// The line actually found (truncated for display).
        found: String,
    },
    /// The magic line names a format version this reader does not support.
    UnsupportedVersion {
        /// The version found in the file.
        version: u32,
    },
    /// A header line exceeds the reader's length bound — the file is not a
    /// trace (e.g. a large binary opened by mistake), and refusing early
    /// keeps a bad path from buffering it into memory.
    OversizedHeaderLine {
        /// The per-line byte bound that was exceeded.
        limit: usize,
    },
    /// The header as a whole exceeds the reader's total size bound (e.g. a
    /// crafted file with a valid magic line and endless metadata lines).
    OversizedHeader {
        /// The total header byte bound that was exceeded.
        limit: usize,
    },
    /// A header line before `%%` is not a `key=value` pair.
    MalformedHeader {
        /// 1-based line number of the offending line.
        line: usize,
        /// The offending text (truncated for display).
        text: String,
    },
    /// The header ended (at `%%` or end of file) without a required field.
    MissingField {
        /// The missing field name.
        field: &'static str,
    },
    /// A required header field has an unparsable value.
    BadField {
        /// The field name.
        field: &'static str,
        /// The unparsable value.
        value: String,
    },
    /// The record stream ended in the middle of a record.
    TruncatedRecord {
        /// Index of the record that could not be completed.
        index: u64,
    },
    /// Bytes remain after the declared number of records.
    TrailingBytes,
    /// A record's flag byte sets a reserved bit or a dependent bit without
    /// its parent (`store` without `mem`, `taken` without `branch`).
    BadFlags {
        /// Index of the offending record.
        index: u64,
        /// The offending flag byte.
        flags: u8,
    },
    /// A writeback register is out of range (must be 1..=31; `$zero`
    /// writebacks are architecturally invisible and never recorded).
    BadRegister {
        /// Index of the offending record.
        index: u64,
        /// The offending register number.
        reg: u8,
    },
    /// A memory access width is not 1, 2 or 4 bytes.
    BadWidth {
        /// Index of the offending record.
        index: u64,
        /// The offending width.
        width: u8,
    },
    /// A record's instruction word does not decode.
    UndecodableWord {
        /// Index of the offending record.
        index: u64,
        /// The decode failure.
        source: DecodeError,
    },
    /// The payload's digest does not match the header's declaration.
    DigestMismatch {
        /// The digest declared in the header.
        declared: u64,
        /// The digest actually computed over the record stream.
        actual: u64,
    },
    /// (Writer) a record's `seq` is not its index in the trace.
    NonSequentialSeq {
        /// Index at which the sequence breaks.
        index: u64,
        /// The `seq` found there.
        seq: u64,
    },
    /// (Writer) a record's `word` does not decode back to its `instr`, so
    /// the trace could not be reproduced from the file.
    InconsistentInstruction {
        /// Index of the offending record.
        index: u64,
    },
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "I/O error: {e}"),
            TraceFileError::BadMagic { found } => {
                write!(
                    f,
                    "bad magic: expected `{MAGIC} {FORMAT_VERSION}`, found `{found}`"
                )
            }
            TraceFileError::UnsupportedVersion { version } => {
                write!(f, "unsupported trace format version {version} (this reader supports {FORMAT_VERSION})")
            }
            TraceFileError::OversizedHeaderLine { limit } => {
                write!(f, "header line exceeds {limit} bytes; not a trace file")
            }
            TraceFileError::OversizedHeader { limit } => {
                write!(
                    f,
                    "header exceeds {limit} bytes before `%%`; not a trace file"
                )
            }
            TraceFileError::MalformedHeader { line, text } => {
                write!(f, "malformed header line {line}: `{text}` is not key=value")
            }
            TraceFileError::MissingField { field } => {
                write!(f, "header is missing the required `{field}` field")
            }
            TraceFileError::BadField { field, value } => {
                write!(f, "header field `{field}` has unparsable value `{value}`")
            }
            TraceFileError::TruncatedRecord { index } => {
                write!(f, "record stream truncated inside record {index}")
            }
            TraceFileError::TrailingBytes => {
                write!(f, "trailing bytes after the declared number of records")
            }
            TraceFileError::BadFlags { index, flags } => {
                write!(f, "record {index} has invalid flag byte {flags:#04x}")
            }
            TraceFileError::BadRegister { index, reg } => {
                write!(f, "record {index} writes invalid register {reg}")
            }
            TraceFileError::BadWidth { index, width } => {
                write!(f, "record {index} has invalid memory width {width}")
            }
            TraceFileError::UndecodableWord { index, source } => {
                write!(f, "record {index}: {source}")
            }
            TraceFileError::DigestMismatch { declared, actual } => {
                write!(
                    f,
                    "payload digest {actual:016x} does not match declared digest {declared:016x}"
                )
            }
            TraceFileError::NonSequentialSeq { index, seq } => {
                write!(
                    f,
                    "record {index} has sequence number {seq}; the format requires seq == index"
                )
            }
            TraceFileError::InconsistentInstruction { index } => {
                write!(f, "record {index}: instruction word does not re-decode to the recorded instruction")
            }
        }
    }
}

impl std::error::Error for TraceFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceFileError::Io(e) => Some(e),
            TraceFileError::UndecodableWord { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceFileError {
    fn from(e: io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

/// Incremental FNV-1a 64-bit digest over the record stream. The same
/// algorithm as `sigcomp::hash::StableHasher`, restated here so the trace
/// format stays self-contained in the ISA crate.
#[derive(Debug, Clone)]
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Encodes one record into `out`, validating the writer-side invariants.
fn encode_record(index: u64, rec: &ExecRecord, out: &mut Vec<u8>) -> Result<(), TraceFileError> {
    if rec.seq != index {
        return Err(TraceFileError::NonSequentialSeq {
            index,
            seq: rec.seq,
        });
    }
    if Instruction::decode(rec.word) != Ok(rec.instr) {
        return Err(TraceFileError::InconsistentInstruction { index });
    }
    let mut flags = 0u8;
    if rec.rs_value.is_some() {
        flags |= FLAG_RS;
    }
    if rec.rt_value.is_some() {
        flags |= FLAG_RT;
    }
    if rec.writeback.is_some() {
        flags |= FLAG_WB;
    }
    if let Some(mem) = rec.mem {
        flags |= FLAG_MEM;
        if mem.is_store {
            flags |= FLAG_STORE;
        }
        if !matches!(mem.width, 1 | 2 | 4) {
            return Err(TraceFileError::BadWidth {
                index,
                width: mem.width,
            });
        }
    }
    if let Some(branch) = rec.branch {
        flags |= FLAG_BRANCH;
        if branch.taken {
            flags |= FLAG_TAKEN;
        }
    }
    out.push(flags);
    out.extend_from_slice(&rec.pc.to_le_bytes());
    out.extend_from_slice(&rec.word.to_le_bytes());
    if let Some(v) = rec.rs_value {
        out.extend_from_slice(&v.to_le_bytes());
    }
    if let Some(v) = rec.rt_value {
        out.extend_from_slice(&v.to_le_bytes());
    }
    if let Some((reg, value)) = rec.writeback {
        if reg.is_zero() {
            return Err(TraceFileError::BadRegister {
                index,
                reg: reg.index(),
            });
        }
        out.push(reg.index());
        out.extend_from_slice(&value.to_le_bytes());
    }
    if let Some(mem) = rec.mem {
        out.extend_from_slice(&mem.addr.to_le_bytes());
        out.push(mem.width);
        out.extend_from_slice(&mem.value.to_le_bytes());
    }
    if let Some(branch) = rec.branch {
        out.extend_from_slice(&branch.target.to_le_bytes());
    }
    Ok(())
}

/// The FNV-1a 64-bit digest of a trace's encoded record stream — the
/// content identity that sweep job ids fold in for file-sourced jobs.
///
/// # Errors
///
/// Fails with the same writer-side validation errors as [`TraceWriter`] if
/// the trace cannot be represented in the format.
pub fn payload_digest(trace: &Trace) -> Result<u64, TraceFileError> {
    let mut digest = Fnv::new();
    let mut buf = Vec::with_capacity(32);
    for (index, rec) in trace.iter().enumerate() {
        buf.clear();
        encode_record(index as u64, rec, &mut buf)?;
        digest.update(&buf);
    }
    Ok(digest.finish())
}

/// Buffers a record stream and writes a complete `.sctrace` file.
///
/// Records are encoded into memory as they arrive (so the record count and
/// the payload digest are known by the time the header must be written) and
/// [`TraceWriter::finish`] emits header + payload in one pass.
#[derive(Debug)]
pub struct TraceWriter {
    payload: Vec<u8>,
    records: u64,
    digest: Fnv,
    meta: Vec<(String, String)>,
}

impl TraceWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        TraceWriter {
            payload: Vec::new(),
            records: 0,
            digest: Fnv::new(),
            meta: Vec::new(),
        }
    }

    /// Attaches a free-form `key=value` metadata pair to the header.
    /// `records` and `digest` are reserved; keys must be non-empty
    /// `[a-z0-9_-]` and values must not contain newlines. Invalid pairs are
    /// ignored rather than corrupting the header.
    pub fn set_meta(&mut self, key: &str, value: &str) {
        let key_ok = !key.is_empty()
            && key != "records"
            && key != "digest"
            && key
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-');
        if key_ok && !value.contains('\n') && !value.contains('\r') {
            self.meta.push((key.to_owned(), value.to_owned()));
        }
    }

    /// Appends one record to the stream.
    ///
    /// # Errors
    ///
    /// Fails if the record cannot be represented: non-sequential `seq`, a
    /// `word` that does not re-decode to `instr`, a `$zero` writeback, or an
    /// invalid memory width. A failed push leaves the writer exactly as it
    /// was, so callers may skip the bad record and keep going.
    pub fn push(&mut self, rec: &ExecRecord) -> Result<(), TraceFileError> {
        let start = self.payload.len();
        if let Err(e) = encode_record(self.records, rec, &mut self.payload) {
            // Drop any bytes the failed encode already appended; otherwise
            // they would silently corrupt every subsequent record.
            self.payload.truncate(start);
            return Err(e);
        }
        self.digest.update(&self.payload[start..]);
        self.records += 1;
        Ok(())
    }

    /// Number of records buffered so far.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The digest of the record stream buffered so far.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.digest.finish()
    }

    /// Writes the complete file (header + record stream) to `out`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`.
    pub fn finish(&self, mut out: impl Write) -> Result<(), TraceFileError> {
        let mut header = String::new();
        header.push_str(&format!("{MAGIC} {FORMAT_VERSION}\n"));
        header.push_str(&format!("records={}\n", self.records));
        header.push_str(&format!("digest={:016x}\n", self.digest()));
        for (key, value) in &self.meta {
            header.push_str(&format!("{key}={value}\n"));
        }
        header.push_str(HEADER_END);
        header.push('\n');
        out.write_all(header.as_bytes())?;
        out.write_all(&self.payload)?;
        out.flush()?;
        Ok(())
    }

    /// Writes the complete file to `path` (via a sibling temp file + rename,
    /// so a crash never leaves a torn trace behind).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn finish_to_path(&self, path: impl AsRef<Path>) -> Result<(), TraceFileError> {
        let path = path.as_ref();
        let tmp = path.with_extension("sctrace.tmp");
        let file = File::create(&tmp)?;
        let result = self
            .finish(io::BufWriter::new(file))
            .and_then(|()| std::fs::rename(&tmp, path).map_err(TraceFileError::from));
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }
}

impl Default for TraceWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Writes a whole in-memory [`Trace`] to `path` and returns its payload
/// digest. `meta` pairs are attached to the header in order.
///
/// # Errors
///
/// Fails on unrepresentable records (see [`TraceWriter::push`]) or I/O
/// errors.
pub fn write_trace(
    path: impl AsRef<Path>,
    trace: &Trace,
    meta: &[(&str, &str)],
) -> Result<u64, TraceFileError> {
    let mut writer = TraceWriter::new();
    for (key, value) in meta {
        writer.set_meta(key, value);
    }
    for rec in trace {
        writer.push(rec)?;
    }
    writer.finish_to_path(path)?;
    Ok(writer.digest())
}

/// Streaming `.sctrace` reader: parses and validates the header eagerly,
/// then yields one validated [`ExecRecord`] at a time.
///
/// After the last declared record, the reader verifies that the stream ends
/// exactly there and that the payload digest matches the header — consuming
/// the whole iterator therefore proves the file intact.
#[derive(Debug)]
pub struct TraceReader<R> {
    input: R,
    records: u64,
    declared_digest: u64,
    meta: Vec<(String, String)>,
    next_index: u64,
    digest: Fnv,
    /// Set once a validation error has been yielded (or the stream has been
    /// fully verified); further `next()` calls return `None`.
    done: bool,
    /// Block buffer the record stream is sliced out of: records are decoded
    /// in place from `buf[pos..filled]`, and the payload digest is folded
    /// over whole consumed blocks (`buf[digested..pos]`) at refill and at
    /// end of stream rather than field by field.
    buf: Vec<u8>,
    pos: usize,
    filled: usize,
    digested: usize,
}

impl TraceReader<BufReader<File>> {
    /// Opens a trace file for streaming.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be opened or its header is invalid.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceFileError> {
        TraceReader::new(BufReader::new(File::open(path)?))
    }
}

impl<R: BufRead> TraceReader<R> {
    /// Wraps any buffered reader positioned at the start of a trace file and
    /// validates the header.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or any header violation.
    pub fn new(mut input: R) -> Result<Self, TraceFileError> {
        let magic = read_header_line(&mut input)?;
        let Some(version_text) = magic.strip_prefix(&format!("{MAGIC} ")) else {
            return Err(TraceFileError::BadMagic {
                found: truncate(&magic),
            });
        };
        let version: u32 = version_text
            .trim()
            .parse()
            .map_err(|_| TraceFileError::BadMagic {
                found: truncate(&magic),
            })?;
        if version != FORMAT_VERSION {
            return Err(TraceFileError::UnsupportedVersion { version });
        }

        let mut records: Option<u64> = None;
        let mut declared_digest: Option<u64> = None;
        let mut meta = Vec::new();
        let mut line_number = 1usize;
        let mut header_bytes = magic.len() + 1;
        loop {
            line_number += 1;
            let line = read_header_line(&mut input)?;
            header_bytes += line.len() + 1;
            if header_bytes > MAX_HEADER_BYTES {
                return Err(TraceFileError::OversizedHeader {
                    limit: MAX_HEADER_BYTES,
                });
            }
            if line == HEADER_END {
                break;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(TraceFileError::MalformedHeader {
                    line: line_number,
                    text: truncate(&line),
                });
            };
            match key {
                "records" => {
                    records = Some(value.parse().map_err(|_| TraceFileError::BadField {
                        field: "records",
                        value: truncate(value),
                    })?);
                }
                "digest" => {
                    let parsed = (value.len() == 16)
                        .then(|| u64::from_str_radix(value, 16).ok())
                        .flatten();
                    declared_digest = Some(parsed.ok_or_else(|| TraceFileError::BadField {
                        field: "digest",
                        value: truncate(value),
                    })?);
                }
                _ => meta.push((key.to_owned(), value.to_owned())),
            }
        }
        Ok(TraceReader {
            input,
            records: records.ok_or(TraceFileError::MissingField { field: "records" })?,
            declared_digest: declared_digest
                .ok_or(TraceFileError::MissingField { field: "digest" })?,
            meta,
            next_index: 0,
            digest: Fnv::new(),
            done: false,
            buf: vec![0u8; BLOCK],
            pos: 0,
            filled: 0,
            digested: 0,
        })
    }

    /// The number of records the header declares.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The payload digest the header declares.
    #[must_use]
    pub fn declared_digest(&self) -> u64 {
        self.declared_digest
    }

    /// Free-form header metadata pairs, in file order.
    #[must_use]
    pub fn meta(&self) -> &[(String, String)] {
        &self.meta
    }

    /// The value of a metadata key, if present.
    #[must_use]
    pub fn meta_value(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Folds every consumed-but-unfolded buffer byte into the running
    /// digest. Called at compaction boundaries and at end of stream, so the
    /// digest advances in whole blocks, not per field — FNV-1a is a
    /// byte-sequential fold, so the result is bit-identical either way.
    fn fold_digest(&mut self) {
        if self.digested < self.pos {
            self.digest.update(&self.buf[self.digested..self.pos]);
            self.digested = self.pos;
        }
    }

    /// Ensures at least `n` unconsumed bytes are buffered, compacting and
    /// refilling as needed. End of input mid-record is a `TruncatedRecord`;
    /// transient `Interrupted` reads are retried like `read_exact` would.
    fn ensure(&mut self, n: usize) -> Result<(), TraceFileError> {
        while self.filled - self.pos < n {
            if self.buf.len() - self.pos < n {
                self.fold_digest();
                self.buf.copy_within(self.pos..self.filled, 0);
                self.filled -= self.pos;
                self.pos = 0;
                self.digested = 0;
            }
            let read = loop {
                match self.input.read(&mut self.buf[self.filled..]) {
                    Ok(read) => break read,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(TraceFileError::Io(e)),
                }
            };
            if read == 0 {
                return Err(TraceFileError::TruncatedRecord {
                    index: self.next_index,
                });
            }
            self.filled += read;
        }
        Ok(())
    }

    /// Reads, validates and returns the next record, `Ok(None)` once the
    /// stream is complete and verified.
    ///
    /// # Errors
    ///
    /// Any stream violation, after which the reader is exhausted.
    pub fn next_record(&mut self) -> Result<Option<ExecRecord>, TraceFileError> {
        if self.done {
            return Ok(None);
        }
        let result = self.next_record_inner();
        if !matches!(result, Ok(Some(_))) {
            self.done = true;
        }
        result
    }

    fn next_record_inner(&mut self) -> Result<Option<ExecRecord>, TraceFileError> {
        let index = self.next_index;
        if index == self.records {
            return self.finish_stream().map(|()| None);
        }

        self.ensure(1)?;
        let flags = self.buf[self.pos];
        let len = RECORD_LEN[flags as usize] as usize;
        if len == 0 {
            return Err(TraceFileError::BadFlags { index, flags });
        }
        self.ensure(len)?;
        let rec = decode_record_body(index, flags, &self.buf[self.pos + 1..self.pos + len])?;
        self.pos += len;
        self.next_index += 1;
        Ok(Some(rec))
    }

    /// The stream must end exactly at the declared record count, with the
    /// declared digest. The end-of-stream probe retries transient
    /// `Interrupted` reads instead of surfacing them as a hard I/O error.
    fn finish_stream(&mut self) -> Result<(), TraceFileError> {
        self.fold_digest();
        if self.pos < self.filled {
            return Err(TraceFileError::TrailingBytes);
        }
        let mut probe = [0u8; 1];
        loop {
            match self.input.read(&mut probe) {
                Ok(0) => break,
                Ok(_) => return Err(TraceFileError::TrailingBytes),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(TraceFileError::Io(e)),
            }
        }
        let actual = self.digest.finish();
        if actual != self.declared_digest {
            return Err(TraceFileError::DigestMismatch {
                declared: self.declared_digest,
                actual,
            });
        }
        Ok(())
    }
}

/// Decodes the body of one record (everything after the flag byte) from a
/// slice whose length was already fixed by [`RECORD_LEN`]. Shared by the
/// streaming reader and the [`crate::DecodedTrace`] arena builder.
pub(crate) fn decode_record_body(
    index: u64,
    flags: u8,
    body: &[u8],
) -> Result<ExecRecord, TraceFileError> {
    debug_assert_eq!(body.len() + 1, RECORD_LEN[flags as usize] as usize);
    let mut at = 0usize;
    let u32_field = |at: &mut usize| {
        let v = u32::from_le_bytes(body[*at..*at + 4].try_into().expect("4-byte slice"));
        *at += 4;
        v
    };
    let pc = u32_field(&mut at);
    let word = u32_field(&mut at);
    let instr = Instruction::decode(word)
        .map_err(|source| TraceFileError::UndecodableWord { index, source })?;
    let rs_value = (flags & FLAG_RS != 0).then(|| u32_field(&mut at));
    let rt_value = (flags & FLAG_RT != 0).then(|| u32_field(&mut at));
    let writeback = if flags & FLAG_WB != 0 {
        let reg = body[at];
        at += 1;
        let value = u32_field(&mut at);
        if reg == 0 || reg >= 32 {
            return Err(TraceFileError::BadRegister { index, reg });
        }
        Some((Reg::new(reg), value))
    } else {
        None
    };
    let mem = if flags & FLAG_MEM != 0 {
        let addr = u32_field(&mut at);
        let width = body[at];
        at += 1;
        let value = u32_field(&mut at);
        if !matches!(width, 1 | 2 | 4) {
            return Err(TraceFileError::BadWidth { index, width });
        }
        Some(MemAccess {
            addr,
            width,
            is_store: flags & FLAG_STORE != 0,
            value,
        })
    } else {
        None
    };
    let branch = (flags & FLAG_BRANCH != 0).then(|| BranchOutcome {
        taken: flags & FLAG_TAKEN != 0,
        target: u32_field(&mut at),
    });
    Ok(ExecRecord {
        seq: index,
        pc,
        word,
        instr,
        rs_value,
        rt_value,
        writeback,
        mem,
        branch,
    })
}

impl<R: BufRead> Iterator for TraceReader<R> {
    type Item = Result<ExecRecord, TraceFileError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

/// Reads and fully validates a trace file into memory.
///
/// # Errors
///
/// Any header or stream violation (see [`TraceFileError`]).
pub fn read_trace(path: impl AsRef<Path>) -> Result<Trace, TraceFileError> {
    collect_records(TraceReader::open(path)?)
}

/// Drains a reader into a [`Trace`], surfacing the first stream error.
///
/// # Errors
///
/// Any stream violation encountered while draining.
pub fn collect_records<R: BufRead>(mut reader: TraceReader<R>) -> Result<Trace, TraceFileError> {
    let mut trace = Trace::new();
    while let Some(rec) = reader.next_record()? {
        trace.push(rec);
    }
    Ok(trace)
}

/// The longest header line a reader will buffer. Far above any real header
/// (the magic line is ~11 bytes, metadata values are short), but it keeps a
/// mistakenly-opened multi-gigabyte binary with no newlines from being read
/// into memory just to report `BadMagic`.
const MAX_HEADER_LINE: usize = 64 * 1024;

/// The most header a reader will accept in total before `%%`. Bounds the
/// `meta` allocation against a crafted file with a valid magic line and an
/// endless stream of `key=value` lines.
const MAX_HEADER_BYTES: usize = 1024 * 1024;

/// Reads one `\n`-terminated header line of at most [`MAX_HEADER_LINE`]
/// bytes (the terminator is consumed and stripped; a `\r` before it is
/// stripped too). The bound is checked per buffered chunk, so an oversized
/// line never accumulates more than one extra buffer's worth of memory.
fn read_header_line(input: &mut impl BufRead) -> Result<String, TraceFileError> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let (used, done) = {
            let available = match input.fill_buf() {
                Ok(available) => available,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(TraceFileError::Io(e)),
            };
            if available.is_empty() {
                if buf.is_empty() {
                    return Err(TraceFileError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "trace header ended before `%%`",
                    )));
                }
                (0, true) // end of input terminates the final line
            } else if let Some(pos) = available.iter().position(|&b| b == b'\n') {
                buf.extend_from_slice(&available[..pos]);
                (pos + 1, true)
            } else {
                buf.extend_from_slice(available);
                (available.len(), false)
            }
        };
        input.consume(used);
        if buf.len() > MAX_HEADER_LINE {
            return Err(TraceFileError::OversizedHeaderLine {
                limit: MAX_HEADER_LINE,
            });
        }
        if done {
            break;
        }
    }
    while buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| {
        TraceFileError::Io(io::Error::new(
            io::ErrorKind::InvalidData,
            "trace header is not UTF-8",
        ))
    })
}

fn truncate(s: &str) -> String {
    const LIMIT: usize = 64;
    if s.len() <= LIMIT {
        s.to_owned()
    } else {
        let mut end = LIMIT;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &s[..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ProgramBuilder;
    use crate::interp::Interpreter;
    use crate::reg;

    fn sample_trace() -> Trace {
        let mut b = ProgramBuilder::new();
        b.dlabel("buf");
        b.words(&[0, 0]);
        b.li(reg::T0, 0);
        b.li(reg::T1, 5);
        b.label("loop");
        b.la(reg::A0, "buf");
        b.sw(reg::T0, reg::A0, 0);
        b.lw(reg::T2, reg::A0, 0);
        b.addiu(reg::T0, reg::T0, 1);
        b.bne(reg::T0, reg::T1, "loop");
        b.halt();
        Interpreter::new(&b.assemble().unwrap())
            .run(10_000)
            .unwrap()
    }

    #[test]
    fn round_trips_through_a_byte_buffer() {
        let trace = sample_trace();
        let mut writer = TraceWriter::new();
        writer.set_meta("source", "unit-test");
        for rec in &trace {
            writer.push(rec).unwrap();
        }
        let mut bytes = Vec::new();
        writer.finish(&mut bytes).unwrap();

        let reader = TraceReader::new(io::Cursor::new(&bytes)).unwrap();
        assert_eq!(reader.records(), trace.len() as u64);
        assert_eq!(reader.meta_value("source"), Some("unit-test"));
        let restored = collect_records(reader).unwrap();
        assert_eq!(restored.records(), trace.records());
    }

    #[test]
    fn digest_is_a_pure_function_of_the_records() {
        let trace = sample_trace();
        let mut writer = TraceWriter::new();
        for rec in &trace {
            writer.push(rec).unwrap();
        }
        assert_eq!(writer.digest(), payload_digest(&trace).unwrap());
        // Metadata must not influence the digest.
        let mut other = TraceWriter::new();
        other.set_meta("note", "different metadata");
        for rec in &trace {
            other.push(rec).unwrap();
        }
        assert_eq!(writer.digest(), other.digest());
    }

    #[test]
    fn non_sequential_seq_is_rejected_by_the_writer() {
        let trace = sample_trace();
        let mut rec = trace.records()[0];
        rec.seq = 7;
        let mut writer = TraceWriter::new();
        assert!(matches!(
            writer.push(&rec),
            Err(TraceFileError::NonSequentialSeq { index: 0, seq: 7 })
        ));
    }

    #[test]
    fn header_rejections_are_named() {
        type Check = fn(&TraceFileError) -> bool;
        let cases: &[(&str, Check)] = &[
            ("nottrace 1\n%%\n", |e| {
                matches!(e, TraceFileError::BadMagic { .. })
            }),
            ("sctrace 99\n%%\n", |e| {
                matches!(e, TraceFileError::UnsupportedVersion { version: 99 })
            }),
            ("sctrace 1\nnot-a-pair\n%%\n", |e| {
                matches!(e, TraceFileError::MalformedHeader { line: 2, .. })
            }),
            ("sctrace 1\ndigest=0000000000000000\n%%\n", |e| {
                matches!(e, TraceFileError::MissingField { field: "records" })
            }),
            ("sctrace 1\nrecords=zero\n%%\n", |e| {
                matches!(
                    e,
                    TraceFileError::BadField {
                        field: "records",
                        ..
                    }
                )
            }),
            ("sctrace 1\nrecords=0\ndigest=xyz\n%%\n", |e| {
                matches!(
                    e,
                    TraceFileError::BadField {
                        field: "digest",
                        ..
                    }
                )
            }),
        ];
        for (text, check) in cases {
            let err = TraceReader::new(io::Cursor::new(text.as_bytes())).unwrap_err();
            assert!(check(&err), "{text:?} gave {err}");
        }
    }

    #[test]
    fn record_length_table_matches_the_encoder() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        for (index, rec) in trace.iter().enumerate() {
            buf.clear();
            encode_record(index as u64, rec, &mut buf).unwrap();
            assert_eq!(
                RECORD_LEN[buf[0] as usize] as usize,
                buf.len(),
                "flags {:#04x}",
                buf[0]
            );
        }
        assert_eq!(RECORD_LEN[FLAG_RESERVED as usize], 0);
        assert_eq!(RECORD_LEN[FLAG_STORE as usize], 0, "store without mem");
        assert_eq!(RECORD_LEN[FLAG_TAKEN as usize], 0, "taken without branch");
        assert_eq!(RECORD_LEN[0], 9);
        assert_eq!(RECORD_LEN[usize::from(!FLAG_RESERVED)], MAX_RECORD as u8);
    }

    /// Wraps a reader and injects a transient `Interrupted` error before
    /// every successful read, the way a signal-delivering OS would.
    struct Interrupting<R> {
        inner: R,
        interrupt_next: bool,
    }

    impl<R: io::Read> io::Read for Interrupting<R> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.interrupt_next {
                self.interrupt_next = false;
                return Err(io::Error::new(io::ErrorKind::Interrupted, "signal"));
            }
            self.interrupt_next = true;
            // One byte at a time, so interrupts land mid-record and at the
            // end-of-stream probe alike.
            let take = buf.len().min(1);
            self.inner.read(&mut buf[..take])
        }
    }

    #[test]
    fn transient_interrupted_reads_are_retried_not_fatal() {
        let trace = sample_trace();
        let mut writer = TraceWriter::new();
        for rec in &trace {
            writer.push(rec).unwrap();
        }
        let mut bytes = Vec::new();
        writer.finish(&mut bytes).unwrap();

        let input = io::BufReader::new(Interrupting {
            inner: io::Cursor::new(&bytes),
            interrupt_next: true,
        });
        let reader = TraceReader::new(input).unwrap();
        let restored = collect_records(reader).expect("interrupts must be retried, not fatal");
        assert_eq!(restored.records(), trace.records());
    }
}
