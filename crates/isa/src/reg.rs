//! Architectural register names.
//!
//! The MIPS integer register file has 32 general-purpose registers; `$zero`
//! is hard-wired to zero. Constants follow the standard MIPS ABI names.

use std::fmt;

/// A general-purpose register index (0–31).
///
/// ```
/// use sigcomp_isa::{Reg, reg};
/// assert_eq!(reg::T0.index(), 8);
/// assert_eq!(Reg::new(8), reg::T0);
/// assert_eq!(reg::T0.to_string(), "$t0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub fn new(index: u8) -> Self {
        assert!(index < 32, "register index {index} out of range");
        Reg(index)
    }

    /// Returns the register index (0–31).
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Returns `true` for `$zero`, which always reads as zero and ignores writes.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The canonical ABI name of the register (e.g. `"$t0"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3", "$t0", "$t1", "$t2", "$t3",
            "$t4", "$t5", "$t6", "$t7", "$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
            "$t8", "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra",
        ];
        NAMES[self.0 as usize]
    }

    /// Iterates over all 32 registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl From<Reg> for u8 {
    fn from(r: Reg) -> Self {
        r.0
    }
}

impl From<Reg> for usize {
    fn from(r: Reg) -> Self {
        r.0 as usize
    }
}

macro_rules! define_regs {
    ($($(#[$doc:meta])* $name:ident = $idx:expr;)*) => {
        $( $(#[$doc])* pub const $name: Reg = Reg($idx); )*
    };
}

define_regs! {
    /// `$zero` — hard-wired zero.
    ZERO = 0;
    /// `$at` — assembler temporary.
    AT = 1;
    /// `$v0` — function result.
    V0 = 2;
    /// `$v1` — function result.
    V1 = 3;
    /// `$a0` — argument.
    A0 = 4;
    /// `$a1` — argument.
    A1 = 5;
    /// `$a2` — argument.
    A2 = 6;
    /// `$a3` — argument.
    A3 = 7;
    /// `$t0` — caller-saved temporary.
    T0 = 8;
    /// `$t1` — caller-saved temporary.
    T1 = 9;
    /// `$t2` — caller-saved temporary.
    T2 = 10;
    /// `$t3` — caller-saved temporary.
    T3 = 11;
    /// `$t4` — caller-saved temporary.
    T4 = 12;
    /// `$t5` — caller-saved temporary.
    T5 = 13;
    /// `$t6` — caller-saved temporary.
    T6 = 14;
    /// `$t7` — caller-saved temporary.
    T7 = 15;
    /// `$s0` — callee-saved.
    S0 = 16;
    /// `$s1` — callee-saved.
    S1 = 17;
    /// `$s2` — callee-saved.
    S2 = 18;
    /// `$s3` — callee-saved.
    S3 = 19;
    /// `$s4` — callee-saved.
    S4 = 20;
    /// `$s5` — callee-saved.
    S5 = 21;
    /// `$s6` — callee-saved.
    S6 = 22;
    /// `$s7` — callee-saved.
    S7 = 23;
    /// `$t8` — caller-saved temporary.
    T8 = 24;
    /// `$t9` — caller-saved temporary.
    T9 = 25;
    /// `$k0` — reserved for kernel.
    K0 = 26;
    /// `$k1` — reserved for kernel.
    K1 = 27;
    /// `$gp` — global pointer.
    GP = 28;
    /// `$sp` — stack pointer.
    SP = 29;
    /// `$fp` — frame pointer.
    FP = 30;
    /// `$ra` — return address.
    RA = 31;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_and_names_agree() {
        assert_eq!(ZERO.index(), 0);
        assert_eq!(RA.index(), 31);
        assert_eq!(SP.name(), "$sp");
        assert_eq!(T0.to_string(), "$t0");
        assert_eq!(S7.index(), 23);
    }

    #[test]
    fn all_yields_32_unique_registers() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), 32);
        for (i, r) in regs.iter().enumerate() {
            assert_eq!(r.index() as usize, i);
        }
    }

    #[test]
    fn only_zero_is_zero() {
        assert!(ZERO.is_zero());
        assert!(Reg::all().filter(|r| r.is_zero()).count() == 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        let _ = Reg::new(32);
    }

    #[test]
    fn conversions() {
        let r = T3;
        assert_eq!(u8::from(r), 11);
        assert_eq!(usize::from(r), 11);
    }
}
