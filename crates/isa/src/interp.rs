//! Functional (architectural) simulator producing dynamic traces.

use crate::error::IsaError;
use crate::instr::Instruction;
use crate::memory::SparseMemory;
use crate::op::Op;
use crate::program::Program;
use crate::reg::{self, Reg};
use crate::trace::{BranchOutcome, ExecRecord, MemAccess, Trace};

/// Architectural-state interpreter for the MIPS-like integer subset.
///
/// The interpreter executes one instruction per [`Interpreter::step`], with
/// no branch delay slots (branches take effect immediately). Overflow never
/// traps. Execution stops when a `break` instruction retires.
///
/// ```
/// use sigcomp_isa::{ProgramBuilder, Interpreter, reg};
/// # fn main() -> Result<(), sigcomp_isa::IsaError> {
/// let mut b = ProgramBuilder::new();
/// b.li(reg::T0, 21);
/// b.addu(reg::T1, reg::T0, reg::T0);
/// b.halt();
/// let mut interp = Interpreter::new(&b.assemble()?);
/// interp.run(1000)?;
/// assert_eq!(interp.reg(reg::T1), 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Interpreter {
    program: Program,
    regs: [u32; 32],
    hi: u32,
    lo: u32,
    pc: u32,
    mem: SparseMemory,
    halted: bool,
    retired: u64,
}

impl Interpreter {
    /// Creates an interpreter with the program loaded into memory, the PC at
    /// the entry point and `$sp` at the top of the stack.
    #[must_use]
    pub fn new(program: &Program) -> Self {
        let mem = program.initial_memory();
        let mut regs = [0u32; 32];
        regs[usize::from(reg::SP)] = program.stack_top;
        regs[usize::from(reg::GP)] = program.data_base;
        Interpreter {
            program: program.clone(),
            regs,
            hi: 0,
            lo: 0,
            pc: program.entry,
            mem,
            halted: false,
            retired: 0,
        }
    }

    /// Current program counter.
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Whether a `break` has retired.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Number of retired instructions (excluding the halting `break`).
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Reads an architectural register.
    #[must_use]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[usize::from(r)]
    }

    /// Writes an architectural register (writes to `$zero` are ignored).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if !r.is_zero() {
            self.regs[usize::from(r)] = value;
        }
    }

    /// The HI special register.
    #[must_use]
    pub fn hi(&self) -> u32 {
        self.hi
    }

    /// The LO special register.
    #[must_use]
    pub fn lo(&self) -> u32 {
        self.lo
    }

    /// Shared access to data memory.
    #[must_use]
    pub fn memory(&self) -> &SparseMemory {
        &self.mem
    }

    /// Mutable access to data memory (e.g. to poke input buffers).
    pub fn memory_mut(&mut self) -> &mut SparseMemory {
        &mut self.mem
    }

    /// Executes a single instruction and returns its [`ExecRecord`], or
    /// `None` if the machine is already halted or has just halted.
    ///
    /// # Errors
    ///
    /// Returns an error if the PC leaves the text segment, an instruction
    /// fails to decode, or a load/store is misaligned.
    pub fn step(&mut self) -> Result<Option<ExecRecord>, IsaError> {
        if self.halted {
            return Ok(None);
        }
        let pc = self.pc;
        let word = self
            .program
            .fetch(pc)
            .ok_or(IsaError::PcOutOfBounds { pc })?;
        let instr = Instruction::decode(word)?;
        let op = instr.op;

        if op == Op::Break {
            self.halted = true;
            return Ok(None);
        }

        let rs_value = op.reads_rs().then(|| self.reg(instr.rs));
        let rt_value = op.reads_rt().then(|| self.reg(instr.rt));
        let rs = rs_value.unwrap_or(0);
        let rt = rt_value.unwrap_or(0);
        let imm_se = instr.imm_se() as u32;
        let imm_ze = instr.imm_ze();

        let mut next_pc = pc.wrapping_add(4);
        let mut writeback: Option<(Reg, u32)> = None;
        let mut mem_access: Option<MemAccess> = None;
        let mut branch: Option<BranchOutcome> = None;

        let mut write = |dest: Option<Reg>, value: u32| {
            if let Some(d) = dest {
                writeback = Some((d, value));
            }
        };

        match op {
            // ---- R-format ALU ------------------------------------------------
            Op::Add | Op::Addu => write(instr.dest_reg(), rs.wrapping_add(rt)),
            Op::Sub | Op::Subu => write(instr.dest_reg(), rs.wrapping_sub(rt)),
            Op::And => write(instr.dest_reg(), rs & rt),
            Op::Or => write(instr.dest_reg(), rs | rt),
            Op::Xor => write(instr.dest_reg(), rs ^ rt),
            Op::Nor => write(instr.dest_reg(), !(rs | rt)),
            Op::Slt => write(instr.dest_reg(), u32::from((rs as i32) < (rt as i32))),
            Op::Sltu => write(instr.dest_reg(), u32::from(rs < rt)),
            Op::Sll => write(instr.dest_reg(), rt << instr.shamt),
            Op::Srl => write(instr.dest_reg(), rt >> instr.shamt),
            Op::Sra => write(instr.dest_reg(), ((rt as i32) >> instr.shamt) as u32),
            Op::Sllv => write(instr.dest_reg(), rt << (rs & 0x1f)),
            Op::Srlv => write(instr.dest_reg(), rt >> (rs & 0x1f)),
            Op::Srav => write(instr.dest_reg(), ((rt as i32) >> (rs & 0x1f)) as u32),

            // ---- multiply / divide -------------------------------------------
            Op::Mult => {
                let p = i64::from(rs as i32) * i64::from(rt as i32);
                self.lo = p as u32;
                self.hi = (p >> 32) as u32;
            }
            Op::Multu => {
                let p = u64::from(rs) * u64::from(rt);
                self.lo = p as u32;
                self.hi = (p >> 32) as u32;
            }
            Op::Div => {
                if rt != 0 {
                    self.lo = ((rs as i32).wrapping_div(rt as i32)) as u32;
                    self.hi = ((rs as i32).wrapping_rem(rt as i32)) as u32;
                } else {
                    self.lo = 0;
                    self.hi = rs;
                }
            }
            Op::Divu => {
                if let (Some(quotient), Some(remainder)) = (rs.checked_div(rt), rs.checked_rem(rt))
                {
                    self.lo = quotient;
                    self.hi = remainder;
                } else {
                    self.lo = 0;
                    self.hi = rs;
                }
            }
            Op::Mfhi => write(instr.dest_reg(), self.hi),
            Op::Mflo => write(instr.dest_reg(), self.lo),
            Op::Mthi => self.hi = rs,
            Op::Mtlo => self.lo = rs,

            // ---- I-format ALU ------------------------------------------------
            Op::Addi | Op::Addiu => write(instr.dest_reg(), rs.wrapping_add(imm_se)),
            Op::Slti => write(instr.dest_reg(), u32::from((rs as i32) < (imm_se as i32))),
            Op::Sltiu => write(instr.dest_reg(), u32::from(rs < imm_se)),
            Op::Andi => write(instr.dest_reg(), rs & imm_ze),
            Op::Ori => write(instr.dest_reg(), rs | imm_ze),
            Op::Xori => write(instr.dest_reg(), rs ^ imm_ze),
            Op::Lui => write(instr.dest_reg(), imm_ze << 16),

            // ---- loads / stores ----------------------------------------------
            Op::Lb | Op::Lbu | Op::Lh | Op::Lhu | Op::Lw | Op::Sb | Op::Sh | Op::Sw => {
                let addr = rs.wrapping_add(imm_se);
                let width = op.mem_width().expect("memory op has width");
                if addr % u32::from(width) != 0 {
                    return Err(IsaError::Misaligned { addr, width });
                }
                if op.is_store() {
                    let value = rt;
                    match op {
                        Op::Sb => self.mem.write_byte(addr, value as u8),
                        Op::Sh => self.mem.write_half(addr, value as u16),
                        Op::Sw => self.mem.write_word(addr, value),
                        _ => unreachable!(),
                    }
                    mem_access = Some(MemAccess {
                        addr,
                        width,
                        is_store: true,
                        value,
                    });
                } else {
                    let value = match op {
                        Op::Lb => self.mem.read_byte(addr) as i8 as i32 as u32,
                        Op::Lbu => u32::from(self.mem.read_byte(addr)),
                        Op::Lh => self.mem.read_half(addr) as i16 as i32 as u32,
                        Op::Lhu => u32::from(self.mem.read_half(addr)),
                        Op::Lw => self.mem.read_word(addr),
                        _ => unreachable!(),
                    };
                    write(instr.dest_reg(), value);
                    mem_access = Some(MemAccess {
                        addr,
                        width,
                        is_store: false,
                        value,
                    });
                }
            }

            // ---- control flow ------------------------------------------------
            Op::Beq | Op::Bne | Op::Blez | Op::Bgtz | Op::Bltz | Op::Bgez => {
                let taken = match op {
                    Op::Beq => rs == rt,
                    Op::Bne => rs != rt,
                    Op::Blez => (rs as i32) <= 0,
                    Op::Bgtz => (rs as i32) > 0,
                    Op::Bltz => (rs as i32) < 0,
                    Op::Bgez => (rs as i32) >= 0,
                    _ => unreachable!(),
                };
                let target = pc.wrapping_add(4).wrapping_add(imm_se << 2);
                if taken {
                    next_pc = target;
                }
                branch = Some(BranchOutcome { taken, target });
            }
            Op::J | Op::Jal => {
                let target = (pc.wrapping_add(4) & 0xf000_0000) | (instr.target << 2);
                if op == Op::Jal {
                    write(Some(reg::RA), pc.wrapping_add(4));
                }
                next_pc = target;
                branch = Some(BranchOutcome {
                    taken: true,
                    target,
                });
            }
            Op::Jr | Op::Jalr => {
                let target = rs;
                if op == Op::Jalr {
                    write(instr.dest_reg(), pc.wrapping_add(4));
                }
                next_pc = target;
                branch = Some(BranchOutcome {
                    taken: true,
                    target,
                });
            }

            Op::Break => unreachable!("handled above"),
        }

        if let Some((r, v)) = writeback {
            self.set_reg(r, v);
        }
        // Report writes to $zero as no writeback (they have no effect).
        let writeback = writeback.filter(|(r, _)| !r.is_zero());

        self.pc = next_pc;
        let record = ExecRecord {
            seq: self.retired,
            pc,
            word,
            instr,
            rs_value,
            rt_value,
            writeback,
            mem: mem_access,
            branch,
        };
        self.retired += 1;
        Ok(Some(record))
    }

    /// Runs until the program halts, collecting the full trace.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::OutOfFuel`] if more than `fuel` instructions
    /// retire, or any execution error from [`Interpreter::step`].
    pub fn run(&mut self, fuel: u64) -> Result<Trace, IsaError> {
        let mut trace = Trace::new();
        self.run_each(fuel, |r| trace.push(*r))?;
        Ok(trace)
    }

    /// Runs until the program halts, invoking `f` for every retired
    /// instruction instead of building a trace (useful for very long runs).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Interpreter::run`].
    pub fn run_each<F: FnMut(&ExecRecord)>(&mut self, fuel: u64, mut f: F) -> Result<(), IsaError> {
        let mut executed = 0u64;
        while !self.halted {
            if executed >= fuel {
                return Err(IsaError::OutOfFuel { limit: fuel });
            }
            match self.step()? {
                Some(r) => f(&r),
                None => break,
            }
            executed += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ProgramBuilder;
    use crate::reg::{A0, T0, T1, T2, T3, V0};

    fn run_builder(b: &ProgramBuilder) -> Interpreter {
        let p = b.assemble().expect("assembles");
        let mut i = Interpreter::new(&p);
        i.run(1_000_000).expect("runs");
        i
    }

    #[test]
    fn arithmetic_and_logic() {
        let mut b = ProgramBuilder::new();
        b.li(T0, 100);
        b.li(T1, -30);
        b.addu(T2, T0, T1); // 70
        b.subu(T3, T0, T1); // 130
        b.and(V0, T0, T1);
        b.halt();
        let i = run_builder(&b);
        assert_eq!(i.reg(T2), 70);
        assert_eq!(i.reg(T3), 130);
        assert_eq!(i.reg(V0), 100u32 & (-30i32 as u32));
    }

    #[test]
    fn slt_and_shifts() {
        let mut b = ProgramBuilder::new();
        b.li(T0, -5);
        b.li(T1, 3);
        b.slt(T2, T0, T1); // 1 (signed)
        b.sltu(T3, T0, T1); // 0 (unsigned: 0xfffffffb > 3)
        b.sll(V0, T1, 4); // 48
        b.sra(A0, T0, 1); // -3 (arithmetic)
        b.halt();
        let i = run_builder(&b);
        assert_eq!(i.reg(T2), 1);
        assert_eq!(i.reg(T3), 0);
        assert_eq!(i.reg(V0), 48);
        assert_eq!(i.reg(A0) as i32, -3);
    }

    #[test]
    fn loop_sums_numbers() {
        // sum 1..=10
        let mut b = ProgramBuilder::new();
        b.li(T0, 0); // sum
        b.li(T1, 1); // i
        b.li(T2, 10); // limit
        b.label("loop");
        b.addu(T0, T0, T1);
        b.addiu(T1, T1, 1);
        b.slt(T3, T2, T1); // limit < i ?
        b.beq(T3, reg::ZERO, "loop");
        b.halt();
        let i = run_builder(&b);
        assert_eq!(i.reg(T0), 55);
    }

    #[test]
    fn memory_loads_and_stores() {
        let mut b = ProgramBuilder::new();
        b.dlabel("buf");
        b.words(&[0, 0, 0]);
        b.la(A0, "buf");
        b.li(T0, 0x1_0203);
        b.sw(T0, A0, 0);
        b.lw(T1, A0, 0);
        b.lbu(T2, A0, 0); // 0x03 little-endian
        b.lb(T3, A0, 2); // 0x01
        b.sh(T0, A0, 4);
        b.lhu(V0, A0, 4); // 0x0203
        b.halt();
        let i = run_builder(&b);
        assert_eq!(i.reg(T1), 0x1_0203);
        assert_eq!(i.reg(T2), 0x03);
        assert_eq!(i.reg(T3), 0x01);
        assert_eq!(i.reg(V0), 0x0203);
    }

    #[test]
    fn sign_extension_on_byte_and_half_loads() {
        let mut b = ProgramBuilder::new();
        b.dlabel("buf");
        b.bytes(&[0xff, 0x80, 0xff, 0xff]);
        b.la(A0, "buf");
        b.lb(T0, A0, 0); // -1
        b.lh(T1, A0, 2); // -1
        b.lbu(T2, A0, 1); // 0x80
        b.halt();
        let i = run_builder(&b);
        assert_eq!(i.reg(T0) as i32, -1);
        assert_eq!(i.reg(T1) as i32, -1);
        assert_eq!(i.reg(T2), 0x80);
    }

    #[test]
    fn mult_div_and_hilo() {
        let mut b = ProgramBuilder::new();
        b.li(T0, -6);
        b.li(T1, 7);
        b.mult(T0, T1);
        b.mflo(T2); // -42
        b.li(T0, 43);
        b.li(T1, 5);
        b.divu(T0, T1);
        b.mflo(T3); // 8
        b.mfhi(V0); // 3
        b.halt();
        let i = run_builder(&b);
        assert_eq!(i.reg(T2) as i32, -42);
        assert_eq!(i.reg(T3), 8);
        assert_eq!(i.reg(V0), 3);
    }

    #[test]
    fn function_call_and_return() {
        let mut b = ProgramBuilder::new();
        b.li(A0, 5);
        b.jal("double");
        b.mov(T0, V0);
        b.halt();
        b.label("double");
        b.addu(V0, A0, A0);
        b.jr(reg::RA);
        let i = run_builder(&b);
        assert_eq!(i.reg(T0), 10);
    }

    #[test]
    fn trace_records_operand_values_and_branches() {
        let mut b = ProgramBuilder::new();
        b.li(T0, 3);
        b.li(T1, 3);
        b.beq(T0, T1, "eq");
        b.li(T2, 99);
        b.label("eq");
        b.halt();
        let p = b.assemble().unwrap();
        let mut i = Interpreter::new(&p);
        let trace = i.run(100).unwrap();
        assert_eq!(trace.len(), 3); // li, li, beq (taken skips li T2)
        let branch = &trace.records()[2];
        assert!(branch.is_taken_branch());
        assert_eq!(branch.rs_value, Some(3));
        assert_eq!(branch.rt_value, Some(3));
        assert_eq!(i.reg(T2), 0);
    }

    #[test]
    fn writes_to_zero_are_discarded() {
        let mut b = ProgramBuilder::new();
        b.li(T0, 7);
        b.addu(reg::ZERO, T0, T0);
        b.halt();
        let p = b.assemble().unwrap();
        let mut i = Interpreter::new(&p);
        let trace = i.run(100).unwrap();
        assert_eq!(i.reg(reg::ZERO), 0);
        assert_eq!(trace.records()[1].writeback, None);
    }

    #[test]
    fn misaligned_access_is_reported() {
        let mut b = ProgramBuilder::new();
        b.li(A0, 0x1000_0001);
        b.lw(T0, A0, 0);
        b.halt();
        let p = b.assemble().unwrap();
        let mut i = Interpreter::new(&p);
        assert!(matches!(
            i.run(100).unwrap_err(),
            IsaError::Misaligned { width: 4, .. }
        ));
    }

    #[test]
    fn out_of_fuel_is_reported() {
        let mut b = ProgramBuilder::new();
        b.label("spin");
        b.b("spin");
        b.halt();
        let p = b.assemble().unwrap();
        let mut i = Interpreter::new(&p);
        assert_eq!(i.run(50).unwrap_err(), IsaError::OutOfFuel { limit: 50 });
    }

    #[test]
    fn stepping_after_halt_returns_none() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let p = b.assemble().unwrap();
        let mut i = Interpreter::new(&p);
        assert!(i.step().unwrap().is_none());
        assert!(i.is_halted());
        assert!(i.step().unwrap().is_none());
    }

    #[test]
    fn run_each_streams_without_building_a_trace() {
        let mut b = ProgramBuilder::new();
        b.li(T0, 0);
        b.li(T1, 100);
        b.label("loop");
        b.addiu(T0, T0, 1);
        b.bne(T0, T1, "loop");
        b.halt();
        let p = b.assemble().unwrap();
        let mut i = Interpreter::new(&p);
        let mut count = 0u64;
        i.run_each(1_000_000, |_| count += 1).unwrap();
        assert_eq!(count, i.retired());
        assert!(count > 200);
    }
}
