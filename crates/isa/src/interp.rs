//! Functional (architectural) simulator producing dynamic traces.
//!
//! Execution is table-driven: [`DISPATCH`] maps every opcode (by its
//! declaration-order discriminant) to a handler function, so the per-record
//! path of [`Interpreter::step`] is one indexed call instead of a 45-arm
//! match.

use crate::error::IsaError;
use crate::instr::Instruction;
use crate::memory::SparseMemory;
use crate::op::Op;
use crate::program::Program;
use crate::reg::{self, Reg};
use crate::trace::{BranchOutcome, ExecRecord, MemAccess, Trace};

/// Architectural-state interpreter for the MIPS-like integer subset.
///
/// The interpreter executes one instruction per [`Interpreter::step`], with
/// no branch delay slots (branches take effect immediately). Overflow never
/// traps. Execution stops when a `break` instruction retires.
///
/// ```
/// use sigcomp_isa::{ProgramBuilder, Interpreter, reg};
/// # fn main() -> Result<(), sigcomp_isa::IsaError> {
/// let mut b = ProgramBuilder::new();
/// b.li(reg::T0, 21);
/// b.addu(reg::T1, reg::T0, reg::T0);
/// b.halt();
/// let mut interp = Interpreter::new(&b.assemble()?);
/// interp.run(1000)?;
/// assert_eq!(interp.reg(reg::T1), 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Interpreter {
    program: Program,
    regs: [u32; 32],
    hi: u32,
    lo: u32,
    pc: u32,
    mem: SparseMemory,
    halted: bool,
    retired: u64,
}

impl Interpreter {
    /// Creates an interpreter with the program loaded into memory, the PC at
    /// the entry point and `$sp` at the top of the stack.
    #[must_use]
    pub fn new(program: &Program) -> Self {
        let mem = program.initial_memory();
        let mut regs = [0u32; 32];
        regs[usize::from(reg::SP)] = program.stack_top;
        regs[usize::from(reg::GP)] = program.data_base;
        Interpreter {
            program: program.clone(),
            regs,
            hi: 0,
            lo: 0,
            pc: program.entry,
            mem,
            halted: false,
            retired: 0,
        }
    }

    /// Current program counter.
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Whether a `break` has retired.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Number of retired instructions (excluding the halting `break`).
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Reads an architectural register.
    #[must_use]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[usize::from(r)]
    }

    /// Writes an architectural register (writes to `$zero` are ignored).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if !r.is_zero() {
            self.regs[usize::from(r)] = value;
        }
    }

    /// The HI special register.
    #[must_use]
    pub fn hi(&self) -> u32 {
        self.hi
    }

    /// The LO special register.
    #[must_use]
    pub fn lo(&self) -> u32 {
        self.lo
    }

    /// Shared access to data memory.
    #[must_use]
    pub fn memory(&self) -> &SparseMemory {
        &self.mem
    }

    /// Mutable access to data memory (e.g. to poke input buffers).
    pub fn memory_mut(&mut self) -> &mut SparseMemory {
        &mut self.mem
    }

    /// Executes a single instruction and returns its [`ExecRecord`], or
    /// `None` if the machine is already halted or has just halted.
    ///
    /// # Errors
    ///
    /// Returns an error if the PC leaves the text segment, an instruction
    /// fails to decode, or a load/store is misaligned.
    pub fn step(&mut self) -> Result<Option<ExecRecord>, IsaError> {
        if self.halted {
            return Ok(None);
        }
        let pc = self.pc;
        let word = self
            .program
            .fetch(pc)
            .ok_or(IsaError::PcOutOfBounds { pc })?;
        let instr = Instruction::decode(word)?;
        let op = instr.op;

        if op == Op::Break {
            self.halted = true;
            return Ok(None);
        }

        let rs_value = op.reads_rs().then(|| self.reg(instr.rs));
        let rt_value = op.reads_rt().then(|| self.reg(instr.rt));
        let operands = Operands {
            pc,
            rs: rs_value.unwrap_or(0),
            rt: rt_value.unwrap_or(0),
            imm_se: instr.imm_se() as u32,
            imm_ze: instr.imm_ze(),
        };

        let effects = DISPATCH[op as usize](self, instr, operands)?;

        if let Some((r, v)) = effects.writeback {
            self.set_reg(r, v);
        }
        // Report writes to $zero as no writeback (they have no effect).
        let writeback = effects.writeback.filter(|(r, _)| !r.is_zero());

        self.pc = effects.redirect.unwrap_or(pc.wrapping_add(4));
        let record = ExecRecord {
            seq: self.retired,
            pc,
            word,
            instr,
            rs_value,
            rt_value,
            writeback,
            mem: effects.mem,
            branch: effects.branch,
        };
        self.retired += 1;
        Ok(Some(record))
    }

    /// Runs until the program halts, collecting the full trace.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::OutOfFuel`] if more than `fuel` instructions
    /// retire, or any execution error from [`Interpreter::step`].
    pub fn run(&mut self, fuel: u64) -> Result<Trace, IsaError> {
        let mut trace = Trace::new();
        self.run_each(fuel, |r| trace.push(*r))?;
        Ok(trace)
    }

    /// Runs until the program halts, invoking `f` for every retired
    /// instruction instead of building a trace (useful for very long runs).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Interpreter::run`].
    pub fn run_each<F: FnMut(&ExecRecord)>(&mut self, fuel: u64, mut f: F) -> Result<(), IsaError> {
        let mut executed = 0u64;
        while !self.halted {
            if executed >= fuel {
                return Err(IsaError::OutOfFuel { limit: fuel });
            }
            match self.step()? {
                Some(r) => f(&r),
                None => break,
            }
            executed += 1;
        }
        Ok(())
    }
}

/// Operand values captured once before dispatch.
#[derive(Debug, Clone, Copy)]
struct Operands {
    pc: u32,
    rs: u32,
    rt: u32,
    imm_se: u32,
    imm_ze: u32,
}

/// What one instruction did: the architectural side effects [`Interpreter::step`]
/// applies and records after the handler returns.
#[derive(Debug, Default)]
struct Effects {
    writeback: Option<(Reg, u32)>,
    mem: Option<MemAccess>,
    branch: Option<BranchOutcome>,
    /// Control redirect; `None` falls through to `pc + 4`.
    redirect: Option<u32>,
}

impl Effects {
    fn write(dest: Option<Reg>, value: u32) -> Self {
        Effects {
            writeback: dest.map(|d| (d, value)),
            ..Effects::default()
        }
    }
}

type ExecFn = fn(&mut Interpreter, Instruction, Operands) -> Result<Effects, IsaError>;

/// Per-opcode execution handlers, indexed by `op as usize` (declaration
/// order is the discriminant, pinned by `Op::ALL`).
const DISPATCH: [ExecFn; Op::ALL.len()] = {
    let mut table = [x_break as ExecFn; Op::ALL.len()];
    let mut i = 0;
    while i < Op::ALL.len() {
        table[i] = exec_fn_of(Op::ALL[i]);
        i += 1;
    }
    table
};

const fn exec_fn_of(op: Op) -> ExecFn {
    match op {
        Op::Add | Op::Addu => x_add,
        Op::Sub | Op::Subu => x_sub,
        Op::And => x_and,
        Op::Or => x_or,
        Op::Xor => x_xor,
        Op::Nor => x_nor,
        Op::Slt => x_slt,
        Op::Sltu => x_sltu,
        Op::Sll => x_sll,
        Op::Srl => x_srl,
        Op::Sra => x_sra,
        Op::Sllv => x_sllv,
        Op::Srlv => x_srlv,
        Op::Srav => x_srav,
        Op::Mult => x_mult,
        Op::Multu => x_multu,
        Op::Div => x_div,
        Op::Divu => x_divu,
        Op::Mfhi => x_mfhi,
        Op::Mflo => x_mflo,
        Op::Mthi => x_mthi,
        Op::Mtlo => x_mtlo,
        Op::Addi | Op::Addiu => x_addi,
        Op::Slti => x_slti,
        Op::Sltiu => x_sltiu,
        Op::Andi => x_andi,
        Op::Ori => x_ori,
        Op::Xori => x_xori,
        Op::Lui => x_lui,
        Op::Lb => x_lb,
        Op::Lbu => x_lbu,
        Op::Lh => x_lh,
        Op::Lhu => x_lhu,
        Op::Lw => x_lw,
        Op::Sb => x_sb,
        Op::Sh => x_sh,
        Op::Sw => x_sw,
        Op::Beq => x_beq,
        Op::Bne => x_bne,
        Op::Blez => x_blez,
        Op::Bgtz => x_bgtz,
        Op::Bltz => x_bltz,
        Op::Bgez => x_bgez,
        Op::J => x_j,
        Op::Jal => x_jal,
        Op::Jr => x_jr,
        Op::Jalr => x_jalr,
        Op::Break => x_break,
    }
}

fn check_aligned(addr: u32, width: u8) -> Result<(), IsaError> {
    if !addr.is_multiple_of(u32::from(width)) {
        return Err(IsaError::Misaligned { addr, width });
    }
    Ok(())
}

fn load_effects(instr: Instruction, addr: u32, width: u8, value: u32) -> Effects {
    Effects {
        writeback: instr.dest_reg().map(|d| (d, value)),
        mem: Some(MemAccess {
            addr,
            width,
            is_store: false,
            value,
        }),
        ..Effects::default()
    }
}

fn store_effects(addr: u32, width: u8, value: u32) -> Effects {
    Effects {
        mem: Some(MemAccess {
            addr,
            width,
            is_store: true,
            value,
        }),
        ..Effects::default()
    }
}

fn branch_effects(o: Operands, taken: bool) -> Effects {
    let target = o.pc.wrapping_add(4).wrapping_add(o.imm_se << 2);
    Effects {
        branch: Some(BranchOutcome { taken, target }),
        redirect: taken.then_some(target),
        ..Effects::default()
    }
}

fn jump_effects(target: u32, link: Option<(Reg, u32)>) -> Effects {
    Effects {
        writeback: link,
        branch: Some(BranchOutcome {
            taken: true,
            target,
        }),
        redirect: Some(target),
        ..Effects::default()
    }
}

// ---- R-format ALU ---------------------------------------------------------
fn x_add(_: &mut Interpreter, n: Instruction, o: Operands) -> Result<Effects, IsaError> {
    Ok(Effects::write(n.dest_reg(), o.rs.wrapping_add(o.rt)))
}
fn x_sub(_: &mut Interpreter, n: Instruction, o: Operands) -> Result<Effects, IsaError> {
    Ok(Effects::write(n.dest_reg(), o.rs.wrapping_sub(o.rt)))
}
fn x_and(_: &mut Interpreter, n: Instruction, o: Operands) -> Result<Effects, IsaError> {
    Ok(Effects::write(n.dest_reg(), o.rs & o.rt))
}
fn x_or(_: &mut Interpreter, n: Instruction, o: Operands) -> Result<Effects, IsaError> {
    Ok(Effects::write(n.dest_reg(), o.rs | o.rt))
}
fn x_xor(_: &mut Interpreter, n: Instruction, o: Operands) -> Result<Effects, IsaError> {
    Ok(Effects::write(n.dest_reg(), o.rs ^ o.rt))
}
fn x_nor(_: &mut Interpreter, n: Instruction, o: Operands) -> Result<Effects, IsaError> {
    Ok(Effects::write(n.dest_reg(), !(o.rs | o.rt)))
}
fn x_slt(_: &mut Interpreter, n: Instruction, o: Operands) -> Result<Effects, IsaError> {
    Ok(Effects::write(
        n.dest_reg(),
        u32::from((o.rs as i32) < (o.rt as i32)),
    ))
}
fn x_sltu(_: &mut Interpreter, n: Instruction, o: Operands) -> Result<Effects, IsaError> {
    Ok(Effects::write(n.dest_reg(), u32::from(o.rs < o.rt)))
}
fn x_sll(_: &mut Interpreter, n: Instruction, o: Operands) -> Result<Effects, IsaError> {
    Ok(Effects::write(n.dest_reg(), o.rt << n.shamt))
}
fn x_srl(_: &mut Interpreter, n: Instruction, o: Operands) -> Result<Effects, IsaError> {
    Ok(Effects::write(n.dest_reg(), o.rt >> n.shamt))
}
fn x_sra(_: &mut Interpreter, n: Instruction, o: Operands) -> Result<Effects, IsaError> {
    Ok(Effects::write(
        n.dest_reg(),
        ((o.rt as i32) >> n.shamt) as u32,
    ))
}
fn x_sllv(_: &mut Interpreter, n: Instruction, o: Operands) -> Result<Effects, IsaError> {
    Ok(Effects::write(n.dest_reg(), o.rt << (o.rs & 0x1f)))
}
fn x_srlv(_: &mut Interpreter, n: Instruction, o: Operands) -> Result<Effects, IsaError> {
    Ok(Effects::write(n.dest_reg(), o.rt >> (o.rs & 0x1f)))
}
fn x_srav(_: &mut Interpreter, n: Instruction, o: Operands) -> Result<Effects, IsaError> {
    Ok(Effects::write(
        n.dest_reg(),
        ((o.rt as i32) >> (o.rs & 0x1f)) as u32,
    ))
}

// ---- multiply / divide ----------------------------------------------------
fn x_mult(i: &mut Interpreter, _: Instruction, o: Operands) -> Result<Effects, IsaError> {
    let p = i64::from(o.rs as i32) * i64::from(o.rt as i32);
    i.lo = p as u32;
    i.hi = (p >> 32) as u32;
    Ok(Effects::default())
}
fn x_multu(i: &mut Interpreter, _: Instruction, o: Operands) -> Result<Effects, IsaError> {
    let p = u64::from(o.rs) * u64::from(o.rt);
    i.lo = p as u32;
    i.hi = (p >> 32) as u32;
    Ok(Effects::default())
}
fn x_div(i: &mut Interpreter, _: Instruction, o: Operands) -> Result<Effects, IsaError> {
    if o.rt != 0 {
        i.lo = ((o.rs as i32).wrapping_div(o.rt as i32)) as u32;
        i.hi = ((o.rs as i32).wrapping_rem(o.rt as i32)) as u32;
    } else {
        i.lo = 0;
        i.hi = o.rs;
    }
    Ok(Effects::default())
}
fn x_divu(i: &mut Interpreter, _: Instruction, o: Operands) -> Result<Effects, IsaError> {
    if let (Some(quotient), Some(remainder)) = (o.rs.checked_div(o.rt), o.rs.checked_rem(o.rt)) {
        i.lo = quotient;
        i.hi = remainder;
    } else {
        i.lo = 0;
        i.hi = o.rs;
    }
    Ok(Effects::default())
}
fn x_mfhi(i: &mut Interpreter, n: Instruction, _: Operands) -> Result<Effects, IsaError> {
    Ok(Effects::write(n.dest_reg(), i.hi))
}
fn x_mflo(i: &mut Interpreter, n: Instruction, _: Operands) -> Result<Effects, IsaError> {
    Ok(Effects::write(n.dest_reg(), i.lo))
}
fn x_mthi(i: &mut Interpreter, _: Instruction, o: Operands) -> Result<Effects, IsaError> {
    i.hi = o.rs;
    Ok(Effects::default())
}
fn x_mtlo(i: &mut Interpreter, _: Instruction, o: Operands) -> Result<Effects, IsaError> {
    i.lo = o.rs;
    Ok(Effects::default())
}

// ---- I-format ALU ---------------------------------------------------------
fn x_addi(_: &mut Interpreter, n: Instruction, o: Operands) -> Result<Effects, IsaError> {
    Ok(Effects::write(n.dest_reg(), o.rs.wrapping_add(o.imm_se)))
}
fn x_slti(_: &mut Interpreter, n: Instruction, o: Operands) -> Result<Effects, IsaError> {
    Ok(Effects::write(
        n.dest_reg(),
        u32::from((o.rs as i32) < (o.imm_se as i32)),
    ))
}
fn x_sltiu(_: &mut Interpreter, n: Instruction, o: Operands) -> Result<Effects, IsaError> {
    Ok(Effects::write(n.dest_reg(), u32::from(o.rs < o.imm_se)))
}
fn x_andi(_: &mut Interpreter, n: Instruction, o: Operands) -> Result<Effects, IsaError> {
    Ok(Effects::write(n.dest_reg(), o.rs & o.imm_ze))
}
fn x_ori(_: &mut Interpreter, n: Instruction, o: Operands) -> Result<Effects, IsaError> {
    Ok(Effects::write(n.dest_reg(), o.rs | o.imm_ze))
}
fn x_xori(_: &mut Interpreter, n: Instruction, o: Operands) -> Result<Effects, IsaError> {
    Ok(Effects::write(n.dest_reg(), o.rs ^ o.imm_ze))
}
fn x_lui(_: &mut Interpreter, n: Instruction, o: Operands) -> Result<Effects, IsaError> {
    Ok(Effects::write(n.dest_reg(), o.imm_ze << 16))
}

// ---- loads / stores -------------------------------------------------------
fn x_lb(i: &mut Interpreter, n: Instruction, o: Operands) -> Result<Effects, IsaError> {
    let addr = o.rs.wrapping_add(o.imm_se);
    check_aligned(addr, 1)?;
    let value = i.mem.read_byte(addr) as i8 as i32 as u32;
    Ok(load_effects(n, addr, 1, value))
}
fn x_lbu(i: &mut Interpreter, n: Instruction, o: Operands) -> Result<Effects, IsaError> {
    let addr = o.rs.wrapping_add(o.imm_se);
    check_aligned(addr, 1)?;
    let value = u32::from(i.mem.read_byte(addr));
    Ok(load_effects(n, addr, 1, value))
}
fn x_lh(i: &mut Interpreter, n: Instruction, o: Operands) -> Result<Effects, IsaError> {
    let addr = o.rs.wrapping_add(o.imm_se);
    check_aligned(addr, 2)?;
    let value = i.mem.read_half(addr) as i16 as i32 as u32;
    Ok(load_effects(n, addr, 2, value))
}
fn x_lhu(i: &mut Interpreter, n: Instruction, o: Operands) -> Result<Effects, IsaError> {
    let addr = o.rs.wrapping_add(o.imm_se);
    check_aligned(addr, 2)?;
    let value = u32::from(i.mem.read_half(addr));
    Ok(load_effects(n, addr, 2, value))
}
fn x_lw(i: &mut Interpreter, n: Instruction, o: Operands) -> Result<Effects, IsaError> {
    let addr = o.rs.wrapping_add(o.imm_se);
    check_aligned(addr, 4)?;
    let value = i.mem.read_word(addr);
    Ok(load_effects(n, addr, 4, value))
}
fn x_sb(i: &mut Interpreter, _: Instruction, o: Operands) -> Result<Effects, IsaError> {
    let addr = o.rs.wrapping_add(o.imm_se);
    check_aligned(addr, 1)?;
    i.mem.write_byte(addr, o.rt as u8);
    Ok(store_effects(addr, 1, o.rt))
}
fn x_sh(i: &mut Interpreter, _: Instruction, o: Operands) -> Result<Effects, IsaError> {
    let addr = o.rs.wrapping_add(o.imm_se);
    check_aligned(addr, 2)?;
    i.mem.write_half(addr, o.rt as u16);
    Ok(store_effects(addr, 2, o.rt))
}
fn x_sw(i: &mut Interpreter, _: Instruction, o: Operands) -> Result<Effects, IsaError> {
    let addr = o.rs.wrapping_add(o.imm_se);
    check_aligned(addr, 4)?;
    i.mem.write_word(addr, o.rt);
    Ok(store_effects(addr, 4, o.rt))
}

// ---- control flow ---------------------------------------------------------
fn x_beq(_: &mut Interpreter, _: Instruction, o: Operands) -> Result<Effects, IsaError> {
    Ok(branch_effects(o, o.rs == o.rt))
}
fn x_bne(_: &mut Interpreter, _: Instruction, o: Operands) -> Result<Effects, IsaError> {
    Ok(branch_effects(o, o.rs != o.rt))
}
fn x_blez(_: &mut Interpreter, _: Instruction, o: Operands) -> Result<Effects, IsaError> {
    Ok(branch_effects(o, (o.rs as i32) <= 0))
}
fn x_bgtz(_: &mut Interpreter, _: Instruction, o: Operands) -> Result<Effects, IsaError> {
    Ok(branch_effects(o, (o.rs as i32) > 0))
}
fn x_bltz(_: &mut Interpreter, _: Instruction, o: Operands) -> Result<Effects, IsaError> {
    Ok(branch_effects(o, (o.rs as i32) < 0))
}
fn x_bgez(_: &mut Interpreter, _: Instruction, o: Operands) -> Result<Effects, IsaError> {
    Ok(branch_effects(o, (o.rs as i32) >= 0))
}
fn x_j(_: &mut Interpreter, n: Instruction, o: Operands) -> Result<Effects, IsaError> {
    let target = (o.pc.wrapping_add(4) & 0xf000_0000) | (n.target << 2);
    Ok(jump_effects(target, None))
}
fn x_jal(_: &mut Interpreter, n: Instruction, o: Operands) -> Result<Effects, IsaError> {
    let target = (o.pc.wrapping_add(4) & 0xf000_0000) | (n.target << 2);
    Ok(jump_effects(target, Some((reg::RA, o.pc.wrapping_add(4)))))
}
fn x_jr(_: &mut Interpreter, _: Instruction, o: Operands) -> Result<Effects, IsaError> {
    Ok(jump_effects(o.rs, None))
}
fn x_jalr(_: &mut Interpreter, n: Instruction, o: Operands) -> Result<Effects, IsaError> {
    Ok(jump_effects(
        o.rs,
        n.dest_reg().map(|d| (d, o.pc.wrapping_add(4))),
    ))
}
fn x_break(_: &mut Interpreter, _: Instruction, _: Operands) -> Result<Effects, IsaError> {
    unreachable!("break halts before dispatch")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ProgramBuilder;
    use crate::reg::{A0, T0, T1, T2, T3, V0};

    fn run_builder(b: &ProgramBuilder) -> Interpreter {
        let p = b.assemble().expect("assembles");
        let mut i = Interpreter::new(&p);
        i.run(1_000_000).expect("runs");
        i
    }

    #[test]
    fn arithmetic_and_logic() {
        let mut b = ProgramBuilder::new();
        b.li(T0, 100);
        b.li(T1, -30);
        b.addu(T2, T0, T1); // 70
        b.subu(T3, T0, T1); // 130
        b.and(V0, T0, T1);
        b.halt();
        let i = run_builder(&b);
        assert_eq!(i.reg(T2), 70);
        assert_eq!(i.reg(T3), 130);
        assert_eq!(i.reg(V0), 0x64u32 & (-0x1ei32 as u32));
    }

    #[test]
    fn slt_and_shifts() {
        let mut b = ProgramBuilder::new();
        b.li(T0, -5);
        b.li(T1, 3);
        b.slt(T2, T0, T1); // 1 (signed)
        b.sltu(T3, T0, T1); // 0 (unsigned: 0xfffffffb > 3)
        b.sll(V0, T1, 4); // 48
        b.sra(A0, T0, 1); // -3 (arithmetic)
        b.halt();
        let i = run_builder(&b);
        assert_eq!(i.reg(T2), 1);
        assert_eq!(i.reg(T3), 0);
        assert_eq!(i.reg(V0), 48);
        assert_eq!(i.reg(A0) as i32, -3);
    }

    #[test]
    fn loop_sums_numbers() {
        // sum 1..=10
        let mut b = ProgramBuilder::new();
        b.li(T0, 0); // sum
        b.li(T1, 1); // i
        b.li(T2, 10); // limit
        b.label("loop");
        b.addu(T0, T0, T1);
        b.addiu(T1, T1, 1);
        b.slt(T3, T2, T1); // limit < i ?
        b.beq(T3, reg::ZERO, "loop");
        b.halt();
        let i = run_builder(&b);
        assert_eq!(i.reg(T0), 55);
    }

    #[test]
    fn memory_loads_and_stores() {
        let mut b = ProgramBuilder::new();
        b.dlabel("buf");
        b.words(&[0, 0, 0]);
        b.la(A0, "buf");
        b.li(T0, 0x1_0203);
        b.sw(T0, A0, 0);
        b.lw(T1, A0, 0);
        b.lbu(T2, A0, 0); // 0x03 little-endian
        b.lb(T3, A0, 2); // 0x01
        b.sh(T0, A0, 4);
        b.lhu(V0, A0, 4); // 0x0203
        b.halt();
        let i = run_builder(&b);
        assert_eq!(i.reg(T1), 0x1_0203);
        assert_eq!(i.reg(T2), 0x03);
        assert_eq!(i.reg(T3), 0x01);
        assert_eq!(i.reg(V0), 0x0203);
    }

    #[test]
    fn sign_extension_on_byte_and_half_loads() {
        let mut b = ProgramBuilder::new();
        b.dlabel("buf");
        b.bytes(&[0xff, 0x80, 0xff, 0xff]);
        b.la(A0, "buf");
        b.lb(T0, A0, 0); // -1
        b.lh(T1, A0, 2); // -1
        b.lbu(T2, A0, 1); // 0x80
        b.halt();
        let i = run_builder(&b);
        assert_eq!(i.reg(T0) as i32, -1);
        assert_eq!(i.reg(T1) as i32, -1);
        assert_eq!(i.reg(T2), 0x80);
    }

    #[test]
    fn mult_div_and_hilo() {
        let mut b = ProgramBuilder::new();
        b.li(T0, -6);
        b.li(T1, 7);
        b.mult(T0, T1);
        b.mflo(T2); // -42
        b.li(T0, 43);
        b.li(T1, 5);
        b.divu(T0, T1);
        b.mflo(T3); // 8
        b.mfhi(V0); // 3
        b.halt();
        let i = run_builder(&b);
        assert_eq!(i.reg(T2) as i32, -42);
        assert_eq!(i.reg(T3), 8);
        assert_eq!(i.reg(V0), 3);
    }

    #[test]
    fn function_call_and_return() {
        let mut b = ProgramBuilder::new();
        b.li(A0, 5);
        b.jal("double");
        b.mov(T0, V0);
        b.halt();
        b.label("double");
        b.addu(V0, A0, A0);
        b.jr(reg::RA);
        let i = run_builder(&b);
        assert_eq!(i.reg(T0), 10);
    }

    #[test]
    fn trace_records_operand_values_and_branches() {
        let mut b = ProgramBuilder::new();
        b.li(T0, 3);
        b.li(T1, 3);
        b.beq(T0, T1, "eq");
        b.li(T2, 99);
        b.label("eq");
        b.halt();
        let p = b.assemble().unwrap();
        let mut i = Interpreter::new(&p);
        let trace = i.run(100).unwrap();
        assert_eq!(trace.len(), 3); // li, li, beq (taken skips li T2)
        let branch = &trace.records()[2];
        assert!(branch.is_taken_branch());
        assert_eq!(branch.rs_value, Some(3));
        assert_eq!(branch.rt_value, Some(3));
        assert_eq!(i.reg(T2), 0);
    }

    #[test]
    fn writes_to_zero_are_discarded() {
        let mut b = ProgramBuilder::new();
        b.li(T0, 7);
        b.addu(reg::ZERO, T0, T0);
        b.halt();
        let p = b.assemble().unwrap();
        let mut i = Interpreter::new(&p);
        let trace = i.run(100).unwrap();
        assert_eq!(i.reg(reg::ZERO), 0);
        assert_eq!(trace.records()[1].writeback, None);
    }

    #[test]
    fn misaligned_access_is_reported() {
        let mut b = ProgramBuilder::new();
        b.li(A0, 0x1000_0001);
        b.lw(T0, A0, 0);
        b.halt();
        let p = b.assemble().unwrap();
        let mut i = Interpreter::new(&p);
        assert!(matches!(
            i.run(100).unwrap_err(),
            IsaError::Misaligned { width: 4, .. }
        ));
    }

    #[test]
    fn out_of_fuel_is_reported() {
        let mut b = ProgramBuilder::new();
        b.label("spin");
        b.b("spin");
        b.halt();
        let p = b.assemble().unwrap();
        let mut i = Interpreter::new(&p);
        assert_eq!(i.run(50).unwrap_err(), IsaError::OutOfFuel { limit: 50 });
    }

    #[test]
    fn stepping_after_halt_returns_none() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let p = b.assemble().unwrap();
        let mut i = Interpreter::new(&p);
        assert!(i.step().unwrap().is_none());
        assert!(i.is_halted());
        assert!(i.step().unwrap().is_none());
    }

    #[test]
    fn run_each_streams_without_building_a_trace() {
        let mut b = ProgramBuilder::new();
        b.li(T0, 0);
        b.li(T1, 100);
        b.label("loop");
        b.addiu(T0, T0, 1);
        b.bne(T0, T1, "loop");
        b.halt();
        let p = b.assemble().unwrap();
        let mut i = Interpreter::new(&p);
        let mut count = 0u64;
        i.run_each(1_000_000, |_| count += 1).unwrap();
        assert_eq!(count, i.retired());
        assert!(count > 200);
    }
}
