//! Instruction representation, binary encoding and decoding.

use crate::error::DecodeError;
use crate::op::{DestField, Op};
use crate::reg::{self, Reg};
use std::fmt;

pub use crate::op::Format;

/// A decoded instruction.
///
/// All field values are stored explicitly regardless of format; fields that a
/// format does not use are zero. [`Instruction::encode`] and
/// [`Instruction::decode`] round-trip through the 32-bit MIPS encodings.
///
/// ```
/// use sigcomp_isa::{Instruction, Op, reg};
/// let i = Instruction::r3(Op::Addu, reg::T0, reg::T1, reg::T2);
/// let word = i.encode();
/// assert_eq!(Instruction::decode(word).unwrap(), i);
/// assert_eq!(i.to_string(), "addu $t0, $t1, $t2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// Operation mnemonic.
    pub op: Op,
    /// Source register `rs` (bits 25..21).
    pub rs: Reg,
    /// Source/destination register `rt` (bits 20..16).
    pub rt: Reg,
    /// Destination register `rd` (bits 15..11).
    pub rd: Reg,
    /// Shift amount (bits 10..6); used by immediate shifts only.
    pub shamt: u8,
    /// Raw 16-bit immediate (I-format).
    pub imm: u16,
    /// 26-bit jump target field (J-format), in instruction-word units.
    pub target: u32,
}

impl Instruction {
    /// A no-operation (`sll $zero, $zero, 0`).
    pub const NOP: Instruction = Instruction {
        op: Op::Sll,
        rs: reg::ZERO,
        rt: reg::ZERO,
        rd: reg::ZERO,
        shamt: 0,
        imm: 0,
        target: 0,
    };

    /// Builds a three-register R-format instruction `op rd, rs, rt`.
    #[must_use]
    pub fn r3(op: Op, rd: Reg, rs: Reg, rt: Reg) -> Self {
        Instruction {
            op,
            rs,
            rt,
            rd,
            shamt: 0,
            imm: 0,
            target: 0,
        }
    }

    /// Builds an immediate-shift instruction `op rd, rt, shamt`.
    #[must_use]
    pub fn shift_imm(op: Op, rd: Reg, rt: Reg, shamt: u8) -> Self {
        Instruction {
            op,
            rs: reg::ZERO,
            rt,
            rd,
            shamt: shamt & 0x1f,
            imm: 0,
            target: 0,
        }
    }

    /// Builds an I-format instruction `op rt, rs, imm`.
    #[must_use]
    pub fn imm(op: Op, rt: Reg, rs: Reg, imm: u16) -> Self {
        Instruction {
            op,
            rs,
            rt,
            rd: reg::ZERO,
            shamt: 0,
            imm,
            target: 0,
        }
    }

    /// Builds a J-format instruction with the given 26-bit word target.
    #[must_use]
    pub fn jump(op: Op, target: u32) -> Self {
        Instruction {
            op,
            rs: reg::ZERO,
            rt: reg::ZERO,
            rd: reg::ZERO,
            shamt: 0,
            imm: 0,
            target: target & 0x03ff_ffff,
        }
    }

    /// The sign-extended immediate as a 32-bit value.
    #[must_use]
    pub fn imm_se(&self) -> i32 {
        self.imm as i16 as i32
    }

    /// The zero-extended immediate as a 32-bit value.
    #[must_use]
    pub fn imm_ze(&self) -> u32 {
        u32::from(self.imm)
    }

    /// The destination general-purpose register written by this instruction,
    /// if any. Writes to `$zero` are reported as `None`.
    #[must_use]
    pub fn dest_reg(&self) -> Option<Reg> {
        let r = match self.op.dest() {
            DestField::None => return None,
            DestField::Rd => self.rd,
            DestField::Rt => self.rt,
            DestField::Link => {
                if self.op == Op::Jalr {
                    self.rd
                } else {
                    reg::RA
                }
            }
        };
        if r.is_zero() {
            None
        } else {
            Some(r)
        }
    }

    /// The source registers read by this instruction (up to two).
    #[must_use]
    pub fn src_regs(&self) -> (Option<Reg>, Option<Reg>) {
        let rs = if self.op.reads_rs() {
            Some(self.rs)
        } else {
            None
        };
        let rt = if self.op.reads_rt() {
            Some(self.rt)
        } else {
            None
        };
        (rs, rt)
    }

    /// Encodes the instruction into its 32-bit binary form.
    #[must_use]
    pub fn encode(&self) -> u32 {
        let opc = u32::from(self.op.opcode()) << 26;
        match self.op.format() {
            Format::R => {
                opc | (u32::from(self.rs.index()) << 21)
                    | (u32::from(self.rt.index()) << 16)
                    | (u32::from(self.rd.index()) << 11)
                    | (u32::from(self.shamt) << 6)
                    | u32::from(self.op.funct().expect("R-format op has funct"))
            }
            Format::I => {
                let rt_field = match self.op.regimm() {
                    Some(sel) => u32::from(sel),
                    None => u32::from(self.rt.index()),
                };
                opc | (u32::from(self.rs.index()) << 21) | (rt_field << 16) | u32::from(self.imm)
            }
            Format::J => opc | self.target,
        }
    }

    /// Decodes a 32-bit instruction word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the opcode/funct combination is not part of
    /// the supported integer subset.
    pub fn decode(word: u32) -> Result<Self, DecodeError> {
        let opcode = ((word >> 26) & 0x3f) as u8;
        let rs = Reg::new(((word >> 21) & 0x1f) as u8);
        let rt_field = ((word >> 16) & 0x1f) as u8;
        let rd = Reg::new(((word >> 11) & 0x1f) as u8);
        let shamt = ((word >> 6) & 0x1f) as u8;
        let funct = (word & 0x3f) as u8;
        let imm = (word & 0xffff) as u16;
        let target = word & 0x03ff_ffff;

        let err = DecodeError {
            word,
            opcode,
            funct,
        };

        let op = match opcode {
            0 => Op::ALL
                .iter()
                .copied()
                .find(|o| o.format() == Format::R && o.funct() == Some(funct))
                .ok_or(err)?,
            1 => Op::ALL
                .iter()
                .copied()
                .find(|o| o.regimm() == Some(rt_field))
                .ok_or(err)?,
            _ => Op::ALL
                .iter()
                .copied()
                .find(|o| o.opcode() == opcode && o.regimm().is_none() && o.format() != Format::R)
                .ok_or(err)?,
        };

        let rt = if op.regimm().is_some() {
            reg::ZERO
        } else {
            Reg::new(rt_field)
        };

        Ok(match op.format() {
            Format::R => Instruction {
                op,
                rs,
                rt,
                rd,
                shamt,
                imm: 0,
                target: 0,
            },
            Format::I => Instruction {
                op,
                rs,
                rt,
                rd: reg::ZERO,
                shamt: 0,
                imm,
                target: 0,
            },
            Format::J => Instruction {
                op,
                rs: reg::ZERO,
                rt: reg::ZERO,
                rd: reg::ZERO,
                shamt: 0,
                imm: 0,
                target,
            },
        })
    }
}

impl Default for Instruction {
    fn default() -> Self {
        Instruction::NOP
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.op.mnemonic();
        match self.op {
            Op::Sll | Op::Srl | Op::Sra => {
                write!(f, "{m} {}, {}, {}", self.rd, self.rt, self.shamt)
            }
            Op::Sllv | Op::Srlv | Op::Srav => {
                write!(f, "{m} {}, {}, {}", self.rd, self.rt, self.rs)
            }
            Op::Jr | Op::Mthi | Op::Mtlo => write!(f, "{m} {}", self.rs),
            Op::Jalr => write!(f, "{m} {}, {}", self.rd, self.rs),
            Op::Break => write!(f, "{m}"),
            Op::Mfhi | Op::Mflo => write!(f, "{m} {}", self.rd),
            Op::Mult | Op::Multu | Op::Div | Op::Divu => {
                write!(f, "{m} {}, {}", self.rs, self.rt)
            }
            Op::J | Op::Jal => write!(f, "{m} {:#x}", self.target << 2),
            Op::Beq | Op::Bne => {
                write!(f, "{m} {}, {}, {}", self.rs, self.rt, self.imm_se())
            }
            Op::Blez | Op::Bgtz | Op::Bltz | Op::Bgez => {
                write!(f, "{m} {}, {}", self.rs, self.imm_se())
            }
            Op::Lui => write!(f, "{m} {}, {:#x}", self.rt, self.imm),
            Op::Lb | Op::Lbu | Op::Lh | Op::Lhu | Op::Lw | Op::Sb | Op::Sh | Op::Sw => {
                write!(f, "{m} {}, {}({})", self.rt, self.imm_se(), self.rs)
            }
            Op::Andi | Op::Ori | Op::Xori => {
                write!(f, "{m} {}, {}, {:#x}", self.rt, self.rs, self.imm)
            }
            Op::Addi | Op::Addiu | Op::Slti | Op::Sltiu => {
                write!(f, "{m} {}, {}, {}", self.rt, self.rs, self.imm_se())
            }
            _ => write!(f, "{m} {}, {}, {}", self.rd, self.rs, self.rt),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{A0, RA, T0, T1, T2, ZERO};

    #[test]
    fn encode_decode_roundtrip_r_format() {
        let i = Instruction::r3(Op::Subu, T0, T1, T2);
        assert_eq!(Instruction::decode(i.encode()).unwrap(), i);
    }

    #[test]
    fn encode_decode_roundtrip_shift() {
        let i = Instruction::shift_imm(Op::Sll, T0, T1, 7);
        let d = Instruction::decode(i.encode()).unwrap();
        assert_eq!(d.shamt, 7);
        assert_eq!(d.op, Op::Sll);
    }

    #[test]
    fn encode_decode_roundtrip_i_format() {
        let i = Instruction::imm(Op::Addiu, T0, T1, 0xfffc);
        let d = Instruction::decode(i.encode()).unwrap();
        assert_eq!(d, i);
        assert_eq!(d.imm_se(), -4);
        assert_eq!(d.imm_ze(), 0xfffc);
    }

    #[test]
    fn encode_decode_roundtrip_j_format() {
        let i = Instruction::jump(Op::Jal, 0x12345);
        let d = Instruction::decode(i.encode()).unwrap();
        assert_eq!(d.op, Op::Jal);
        assert_eq!(d.target, 0x12345);
    }

    #[test]
    fn encode_decode_roundtrip_regimm() {
        let i = Instruction::imm(Op::Bgez, ZERO, T0, 0x0010);
        let d = Instruction::decode(i.encode()).unwrap();
        assert_eq!(d.op, Op::Bgez);
        assert_eq!(d.rs, T0);
    }

    #[test]
    fn roundtrip_every_op() {
        for &op in Op::ALL {
            let i = match op.format() {
                Format::R => match op {
                    Op::Sll | Op::Srl | Op::Sra => Instruction::shift_imm(op, T0, T1, 3),
                    _ => Instruction::r3(op, T0, T1, T2),
                },
                Format::I => Instruction::imm(op, T0, T1, 0x1234),
                Format::J => Instruction::jump(op, 0x3ffff),
            };
            let d = Instruction::decode(i.encode()).expect("decodes");
            assert_eq!(d.op, op, "op {op} did not round-trip");
        }
    }

    #[test]
    fn unknown_word_fails_to_decode() {
        // opcode 0x3f is unused in this subset.
        let e = Instruction::decode(0xfc00_0000).unwrap_err();
        assert_eq!(e.opcode, 0x3f);
        // opcode 0 with unused funct 0x3f.
        assert!(Instruction::decode(0x0000_003f).is_err());
    }

    #[test]
    fn nop_is_sll_zero() {
        assert_eq!(Instruction::NOP.encode(), 0);
        assert_eq!(Instruction::decode(0).unwrap(), Instruction::NOP);
        assert_eq!(Instruction::default(), Instruction::NOP);
    }

    #[test]
    fn dest_and_src_registers() {
        let add = Instruction::r3(Op::Addu, T0, T1, T2);
        assert_eq!(add.dest_reg(), Some(T0));
        assert_eq!(add.src_regs(), (Some(T1), Some(T2)));

        let store = Instruction::imm(Op::Sw, T0, A0, 4);
        assert_eq!(store.dest_reg(), None);
        assert_eq!(store.src_regs(), (Some(A0), Some(T0)));

        let load = Instruction::imm(Op::Lw, T0, A0, 4);
        assert_eq!(load.dest_reg(), Some(T0));
        assert_eq!(load.src_regs(), (Some(A0), None));

        let jal = Instruction::jump(Op::Jal, 0x100);
        assert_eq!(jal.dest_reg(), Some(RA));

        let to_zero = Instruction::r3(Op::Addu, ZERO, T1, T2);
        assert_eq!(to_zero.dest_reg(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            Instruction::r3(Op::Addu, T0, T1, T2).to_string(),
            "addu $t0, $t1, $t2"
        );
        assert_eq!(
            Instruction::imm(Op::Lw, T0, A0, 8).to_string(),
            "lw $t0, 8($a0)"
        );
        assert_eq!(
            Instruction::shift_imm(Op::Sll, T0, T1, 2).to_string(),
            "sll $t0, $t1, 2"
        );
    }
}
