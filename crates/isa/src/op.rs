//! Operation mnemonics and their encoding/behavioural metadata.

use std::fmt;

/// The instruction format of an operation, following the MIPS I encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// Register format: opcode 0, three register fields, shamt and funct.
    R,
    /// Immediate format: opcode, two register fields and a 16-bit immediate.
    I,
    /// Jump format: opcode and a 26-bit target.
    J,
}

/// A coarse behavioural class used by the pipeline and activity models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer ALU operation (add/sub/logical/set-less-than/lui).
    Alu,
    /// Shift by immediate or register amount.
    Shift,
    /// Multiply or divide (writes HI/LO).
    MulDiv,
    /// Move between HI/LO and the general register file.
    HiLo,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional jump (including jump-and-link and jump-register).
    Jump,
    /// The `break` instruction, used by this crate as a program halt.
    Halt,
}

macro_rules! define_ops {
    ($( $(#[$doc:meta])* $name:ident {
        mnemonic: $mn:expr, format: $fmt:ident, class: $class:ident,
        opcode: $opc:expr, funct: $funct:expr, regimm: $regimm:expr,
        reads_rs: $rrs:expr, reads_rt: $rrt:expr, dest: $dest:expr
    } ),* $(,)?) => {
        /// An operation mnemonic of the supported MIPS-like integer subset.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum Op {
            $( $(#[$doc])* $name, )*
        }

        impl Op {
            /// All supported operations.
            pub const ALL: &'static [Op] = &[ $(Op::$name,)* ];

            /// The assembler mnemonic, e.g. `"addu"`.
            #[must_use]
            pub fn mnemonic(self) -> &'static str {
                match self { $(Op::$name => $mn,)* }
            }

            /// The instruction format used to encode this operation.
            #[must_use]
            pub fn format(self) -> Format {
                match self { $(Op::$name => Format::$fmt,)* }
            }

            /// The behavioural class of the operation.
            #[must_use]
            pub fn class(self) -> OpClass {
                match self { $(Op::$name => OpClass::$class,)* }
            }

            /// The primary opcode field (bits 31..26).
            #[must_use]
            pub fn opcode(self) -> u8 {
                match self { $(Op::$name => $opc,)* }
            }

            /// The function field (bits 5..0) for R-format operations.
            #[must_use]
            pub fn funct(self) -> Option<u8> {
                match self { $(Op::$name => $funct,)* }
            }

            /// The `rt`-field selector for REGIMM (opcode 1) operations.
            #[must_use]
            pub fn regimm(self) -> Option<u8> {
                match self { $(Op::$name => $regimm,)* }
            }

            /// Whether the operation reads the `rs` register.
            #[must_use]
            pub fn reads_rs(self) -> bool {
                match self { $(Op::$name => $rrs,)* }
            }

            /// Whether the operation reads the `rt` register.
            #[must_use]
            pub fn reads_rt(self) -> bool {
                match self { $(Op::$name => $rrt,)* }
            }

            /// Which field names the destination register, if any.
            #[must_use]
            pub fn dest(self) -> DestField {
                match self { $(Op::$name => $dest,)* }
            }
        }
    };
}

/// Which instruction field names the destination register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DestField {
    /// No general-purpose destination register.
    None,
    /// The `rd` field (R-format).
    Rd,
    /// The `rt` field (I-format ALU and loads).
    Rt,
    /// The link register `$ra` (JAL) or `rd` (JALR).
    Link,
}

use DestField::{Link, None as NoDest, Rd, Rt};

define_ops! {
    /// Shift left logical by immediate amount.
    Sll { mnemonic: "sll", format: R, class: Shift, opcode: 0, funct: Some(0x00), regimm: None, reads_rs: false, reads_rt: true, dest: Rd },
    /// Shift right logical by immediate amount.
    Srl { mnemonic: "srl", format: R, class: Shift, opcode: 0, funct: Some(0x02), regimm: None, reads_rs: false, reads_rt: true, dest: Rd },
    /// Shift right arithmetic by immediate amount.
    Sra { mnemonic: "sra", format: R, class: Shift, opcode: 0, funct: Some(0x03), regimm: None, reads_rs: false, reads_rt: true, dest: Rd },
    /// Shift left logical by register amount.
    Sllv { mnemonic: "sllv", format: R, class: Shift, opcode: 0, funct: Some(0x04), regimm: None, reads_rs: true, reads_rt: true, dest: Rd },
    /// Shift right logical by register amount.
    Srlv { mnemonic: "srlv", format: R, class: Shift, opcode: 0, funct: Some(0x06), regimm: None, reads_rs: true, reads_rt: true, dest: Rd },
    /// Shift right arithmetic by register amount.
    Srav { mnemonic: "srav", format: R, class: Shift, opcode: 0, funct: Some(0x07), regimm: None, reads_rs: true, reads_rt: true, dest: Rd },
    /// Jump to register.
    Jr { mnemonic: "jr", format: R, class: Jump, opcode: 0, funct: Some(0x08), regimm: None, reads_rs: true, reads_rt: false, dest: NoDest },
    /// Jump to register and link.
    Jalr { mnemonic: "jalr", format: R, class: Jump, opcode: 0, funct: Some(0x09), regimm: None, reads_rs: true, reads_rt: false, dest: Link },
    /// Halt the program (encoded as the MIPS `break` instruction).
    Break { mnemonic: "break", format: R, class: Halt, opcode: 0, funct: Some(0x0d), regimm: None, reads_rs: false, reads_rt: false, dest: NoDest },
    /// Move from HI.
    Mfhi { mnemonic: "mfhi", format: R, class: HiLo, opcode: 0, funct: Some(0x10), regimm: None, reads_rs: false, reads_rt: false, dest: Rd },
    /// Move to HI.
    Mthi { mnemonic: "mthi", format: R, class: HiLo, opcode: 0, funct: Some(0x11), regimm: None, reads_rs: true, reads_rt: false, dest: NoDest },
    /// Move from LO.
    Mflo { mnemonic: "mflo", format: R, class: HiLo, opcode: 0, funct: Some(0x12), regimm: None, reads_rs: false, reads_rt: false, dest: Rd },
    /// Move to LO.
    Mtlo { mnemonic: "mtlo", format: R, class: HiLo, opcode: 0, funct: Some(0x13), regimm: None, reads_rs: true, reads_rt: false, dest: NoDest },
    /// Signed multiply into HI/LO.
    Mult { mnemonic: "mult", format: R, class: MulDiv, opcode: 0, funct: Some(0x18), regimm: None, reads_rs: true, reads_rt: true, dest: NoDest },
    /// Unsigned multiply into HI/LO.
    Multu { mnemonic: "multu", format: R, class: MulDiv, opcode: 0, funct: Some(0x19), regimm: None, reads_rs: true, reads_rt: true, dest: NoDest },
    /// Signed divide into HI/LO.
    Div { mnemonic: "div", format: R, class: MulDiv, opcode: 0, funct: Some(0x1a), regimm: None, reads_rs: true, reads_rt: true, dest: NoDest },
    /// Unsigned divide into HI/LO.
    Divu { mnemonic: "divu", format: R, class: MulDiv, opcode: 0, funct: Some(0x1b), regimm: None, reads_rs: true, reads_rt: true, dest: NoDest },
    /// Signed add (no overflow trap in this model).
    Add { mnemonic: "add", format: R, class: Alu, opcode: 0, funct: Some(0x20), regimm: None, reads_rs: true, reads_rt: true, dest: Rd },
    /// Unsigned add.
    Addu { mnemonic: "addu", format: R, class: Alu, opcode: 0, funct: Some(0x21), regimm: None, reads_rs: true, reads_rt: true, dest: Rd },
    /// Signed subtract (no overflow trap in this model).
    Sub { mnemonic: "sub", format: R, class: Alu, opcode: 0, funct: Some(0x22), regimm: None, reads_rs: true, reads_rt: true, dest: Rd },
    /// Unsigned subtract.
    Subu { mnemonic: "subu", format: R, class: Alu, opcode: 0, funct: Some(0x23), regimm: None, reads_rs: true, reads_rt: true, dest: Rd },
    /// Bitwise AND.
    And { mnemonic: "and", format: R, class: Alu, opcode: 0, funct: Some(0x24), regimm: None, reads_rs: true, reads_rt: true, dest: Rd },
    /// Bitwise OR.
    Or { mnemonic: "or", format: R, class: Alu, opcode: 0, funct: Some(0x25), regimm: None, reads_rs: true, reads_rt: true, dest: Rd },
    /// Bitwise XOR.
    Xor { mnemonic: "xor", format: R, class: Alu, opcode: 0, funct: Some(0x26), regimm: None, reads_rs: true, reads_rt: true, dest: Rd },
    /// Bitwise NOR.
    Nor { mnemonic: "nor", format: R, class: Alu, opcode: 0, funct: Some(0x27), regimm: None, reads_rs: true, reads_rt: true, dest: Rd },
    /// Set on less than (signed).
    Slt { mnemonic: "slt", format: R, class: Alu, opcode: 0, funct: Some(0x2a), regimm: None, reads_rs: true, reads_rt: true, dest: Rd },
    /// Set on less than (unsigned).
    Sltu { mnemonic: "sltu", format: R, class: Alu, opcode: 0, funct: Some(0x2b), regimm: None, reads_rs: true, reads_rt: true, dest: Rd },
    /// Branch on less than zero.
    Bltz { mnemonic: "bltz", format: I, class: Branch, opcode: 1, funct: None, regimm: Some(0x00), reads_rs: true, reads_rt: false, dest: NoDest },
    /// Branch on greater than or equal to zero.
    Bgez { mnemonic: "bgez", format: I, class: Branch, opcode: 1, funct: None, regimm: Some(0x01), reads_rs: true, reads_rt: false, dest: NoDest },
    /// Unconditional jump.
    J { mnemonic: "j", format: J, class: Jump, opcode: 2, funct: None, regimm: None, reads_rs: false, reads_rt: false, dest: NoDest },
    /// Jump and link.
    Jal { mnemonic: "jal", format: J, class: Jump, opcode: 3, funct: None, regimm: None, reads_rs: false, reads_rt: false, dest: Link },
    /// Branch on equal.
    Beq { mnemonic: "beq", format: I, class: Branch, opcode: 4, funct: None, regimm: None, reads_rs: true, reads_rt: true, dest: NoDest },
    /// Branch on not equal.
    Bne { mnemonic: "bne", format: I, class: Branch, opcode: 5, funct: None, regimm: None, reads_rs: true, reads_rt: true, dest: NoDest },
    /// Branch on less than or equal to zero.
    Blez { mnemonic: "blez", format: I, class: Branch, opcode: 6, funct: None, regimm: None, reads_rs: true, reads_rt: false, dest: NoDest },
    /// Branch on greater than zero.
    Bgtz { mnemonic: "bgtz", format: I, class: Branch, opcode: 7, funct: None, regimm: None, reads_rs: true, reads_rt: false, dest: NoDest },
    /// Add immediate (signed, no trap).
    Addi { mnemonic: "addi", format: I, class: Alu, opcode: 8, funct: None, regimm: None, reads_rs: true, reads_rt: false, dest: Rt },
    /// Add immediate unsigned.
    Addiu { mnemonic: "addiu", format: I, class: Alu, opcode: 9, funct: None, regimm: None, reads_rs: true, reads_rt: false, dest: Rt },
    /// Set on less than immediate (signed).
    Slti { mnemonic: "slti", format: I, class: Alu, opcode: 10, funct: None, regimm: None, reads_rs: true, reads_rt: false, dest: Rt },
    /// Set on less than immediate (unsigned).
    Sltiu { mnemonic: "sltiu", format: I, class: Alu, opcode: 11, funct: None, regimm: None, reads_rs: true, reads_rt: false, dest: Rt },
    /// AND immediate (zero-extended).
    Andi { mnemonic: "andi", format: I, class: Alu, opcode: 12, funct: None, regimm: None, reads_rs: true, reads_rt: false, dest: Rt },
    /// OR immediate (zero-extended).
    Ori { mnemonic: "ori", format: I, class: Alu, opcode: 13, funct: None, regimm: None, reads_rs: true, reads_rt: false, dest: Rt },
    /// XOR immediate (zero-extended).
    Xori { mnemonic: "xori", format: I, class: Alu, opcode: 14, funct: None, regimm: None, reads_rs: true, reads_rt: false, dest: Rt },
    /// Load upper immediate.
    Lui { mnemonic: "lui", format: I, class: Alu, opcode: 15, funct: None, regimm: None, reads_rs: false, reads_rt: false, dest: Rt },
    /// Load byte (sign-extended).
    Lb { mnemonic: "lb", format: I, class: Load, opcode: 32, funct: None, regimm: None, reads_rs: true, reads_rt: false, dest: Rt },
    /// Load halfword (sign-extended).
    Lh { mnemonic: "lh", format: I, class: Load, opcode: 33, funct: None, regimm: None, reads_rs: true, reads_rt: false, dest: Rt },
    /// Load word.
    Lw { mnemonic: "lw", format: I, class: Load, opcode: 35, funct: None, regimm: None, reads_rs: true, reads_rt: false, dest: Rt },
    /// Load byte unsigned.
    Lbu { mnemonic: "lbu", format: I, class: Load, opcode: 36, funct: None, regimm: None, reads_rs: true, reads_rt: false, dest: Rt },
    /// Load halfword unsigned.
    Lhu { mnemonic: "lhu", format: I, class: Load, opcode: 37, funct: None, regimm: None, reads_rs: true, reads_rt: false, dest: Rt },
    /// Store byte.
    Sb { mnemonic: "sb", format: I, class: Store, opcode: 40, funct: None, regimm: None, reads_rs: true, reads_rt: true, dest: NoDest },
    /// Store halfword.
    Sh { mnemonic: "sh", format: I, class: Store, opcode: 41, funct: None, regimm: None, reads_rs: true, reads_rt: true, dest: NoDest },
    /// Store word.
    Sw { mnemonic: "sw", format: I, class: Store, opcode: 43, funct: None, regimm: None, reads_rs: true, reads_rt: true, dest: NoDest },
}

impl Op {
    /// Returns `true` for memory loads.
    #[must_use]
    pub fn is_load(self) -> bool {
        self.class() == OpClass::Load
    }

    /// Returns `true` for memory stores.
    #[must_use]
    pub fn is_store(self) -> bool {
        self.class() == OpClass::Store
    }

    /// Returns `true` for conditional branches.
    #[must_use]
    pub fn is_branch(self) -> bool {
        self.class() == OpClass::Branch
    }

    /// Returns `true` for unconditional jumps (J, JAL, JR, JALR).
    #[must_use]
    pub fn is_jump(self) -> bool {
        self.class() == OpClass::Jump
    }

    /// Returns `true` if the operation changes control flow.
    #[must_use]
    pub fn is_control(self) -> bool {
        self.is_branch() || self.is_jump()
    }

    /// The memory access width in bytes for loads and stores, `None` otherwise.
    #[must_use]
    pub fn mem_width(self) -> Option<u8> {
        match self {
            Op::Lb | Op::Lbu | Op::Sb => Some(1),
            Op::Lh | Op::Lhu | Op::Sh => Some(2),
            Op::Lw | Op::Sw => Some(4),
            _ => None,
        }
    }

    /// Whether the I-format immediate is zero-extended (logical immediates)
    /// rather than sign-extended.
    #[must_use]
    pub fn zero_extends_imm(self) -> bool {
        matches!(self, Op::Andi | Op::Ori | Op::Xori)
    }

    /// Whether the operation uses the R-format `funct` field (i.e. is encoded
    /// under primary opcode 0). This is the set of instructions eligible for
    /// the function-code recoding of §2.3 of the paper.
    #[must_use]
    pub fn uses_funct(self) -> bool {
        self.format() == Format::R
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ops_have_consistent_metadata() {
        for &op in Op::ALL {
            match op.format() {
                Format::R => {
                    assert_eq!(op.opcode(), 0, "{op} should have opcode 0");
                    assert!(op.funct().is_some(), "{op} needs a funct field");
                }
                Format::I => {
                    assert!(op.funct().is_none(), "{op} must not use funct");
                }
                Format::J => {
                    assert!(matches!(op, Op::J | Op::Jal));
                }
            }
            if op.regimm().is_some() {
                assert_eq!(op.opcode(), 1, "{op} REGIMM ops use opcode 1");
            }
        }
    }

    #[test]
    fn encodings_are_unique() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for &op in Op::ALL {
            let key = (op.opcode(), op.funct(), op.regimm());
            assert!(seen.insert(key), "duplicate encoding for {op}");
        }
    }

    #[test]
    fn class_predicates() {
        assert!(Op::Lw.is_load());
        assert!(Op::Sw.is_store());
        assert!(Op::Beq.is_branch());
        assert!(Op::J.is_jump());
        assert!(Op::Jr.is_jump());
        assert!(Op::Beq.is_control());
        assert!(!Op::Addu.is_control());
        assert_eq!(Op::Lh.mem_width(), Some(2));
        assert_eq!(Op::Addu.mem_width(), None);
        assert!(Op::Ori.zero_extends_imm());
        assert!(!Op::Addiu.zero_extends_imm());
    }

    #[test]
    fn mnemonics_are_lowercase_and_unique() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for &op in Op::ALL {
            let m = op.mnemonic();
            assert_eq!(m, m.to_lowercase());
            assert!(seen.insert(m));
        }
    }

    #[test]
    fn dest_field_matches_format_expectations() {
        assert_eq!(Op::Addu.dest(), DestField::Rd);
        assert_eq!(Op::Addiu.dest(), DestField::Rt);
        assert_eq!(Op::Lw.dest(), DestField::Rt);
        assert_eq!(Op::Sw.dest(), DestField::None);
        assert_eq!(Op::Jal.dest(), DestField::Link);
    }

    #[test]
    fn funct_usage_matches_paper_definition() {
        assert!(Op::Addu.uses_funct());
        assert!(Op::Sll.uses_funct());
        assert!(!Op::Addiu.uses_funct());
        assert!(!Op::J.uses_funct());
    }
}
