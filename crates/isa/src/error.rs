//! Error types for the ISA crate.

use std::fmt;

/// Error produced when decoding a 32-bit instruction word fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecodeError {
    /// The raw instruction word that could not be decoded.
    pub word: u32,
    /// The primary opcode field (bits 31..26).
    pub opcode: u8,
    /// The function field (bits 5..0), meaningful only for R-format words.
    pub funct: u8,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot decode instruction word {:#010x} (opcode {:#04x}, funct {:#04x})",
            self.word, self.opcode, self.funct
        )
    }
}

impl std::error::Error for DecodeError {}

/// Errors produced while assembling or executing programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// A label was defined more than once.
    DuplicateLabel(String),
    /// A branch target is out of the signed 16-bit displacement range.
    BranchOutOfRange {
        /// The label whose displacement overflowed.
        label: String,
        /// The displacement in instructions.
        displacement: i64,
    },
    /// An instruction word could not be decoded during execution.
    Decode(DecodeError),
    /// The interpreter executed more instructions than its fuel budget.
    OutOfFuel {
        /// The fuel limit that was exhausted.
        limit: u64,
    },
    /// The program counter left the text segment without reaching a halt.
    PcOutOfBounds {
        /// The faulting program counter.
        pc: u32,
    },
    /// A load or store used an address with invalid alignment for its width.
    Misaligned {
        /// The faulting effective address.
        addr: u32,
        /// The access width in bytes.
        width: u8,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            IsaError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            IsaError::BranchOutOfRange {
                label,
                displacement,
            } => write!(
                f,
                "branch to `{label}` out of range (displacement {displacement} instructions)"
            ),
            IsaError::Decode(e) => write!(f, "{e}"),
            IsaError::OutOfFuel { limit } => {
                write!(f, "interpreter exceeded fuel limit of {limit} instructions")
            }
            IsaError::PcOutOfBounds { pc } => {
                write!(f, "program counter {pc:#010x} left the text segment")
            }
            IsaError::Misaligned { addr, width } => {
                write!(f, "misaligned {width}-byte access at {addr:#010x}")
            }
        }
    }
}

impl std::error::Error for IsaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IsaError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for IsaError {
    fn from(e: DecodeError) -> Self {
        IsaError::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_error_display_mentions_word_and_fields() {
        let e = DecodeError {
            word: 0xdead_beef,
            opcode: 0x37,
            funct: 0x2f,
        };
        let s = e.to_string();
        assert!(s.contains("0xdeadbeef"));
        assert!(s.contains("0x37"));
    }

    #[test]
    fn isa_error_display_variants() {
        assert!(IsaError::UndefinedLabel("foo".into())
            .to_string()
            .contains("foo"));
        assert!(IsaError::OutOfFuel { limit: 10 }.to_string().contains("10"));
        assert!(IsaError::PcOutOfBounds { pc: 0x1000 }
            .to_string()
            .contains("0x00001000"));
        assert!(IsaError::Misaligned {
            addr: 0x1001,
            width: 4
        }
        .to_string()
        .contains("4-byte"));
    }

    #[test]
    fn decode_error_converts_to_isa_error() {
        let d = DecodeError {
            word: 1,
            opcode: 0,
            funct: 1,
        };
        let e: IsaError = d.into();
        assert_eq!(e, IsaError::Decode(d));
    }
}
