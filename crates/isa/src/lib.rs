//! # sigcomp-isa
//!
//! A MIPS-like 32-bit integer instruction-set architecture used as the
//! substrate for the significance-compression study of Canal, González and
//! Smith (MICRO-33, 2000).
//!
//! The crate provides:
//!
//! * [`Reg`] — architectural register names,
//! * [`Op`] / [`Instruction`] — the integer subset of the MIPS I ISA with
//!   binary [`Instruction::encode`] / [`Instruction::decode`],
//! * [`ProgramBuilder`] — a tiny assembler with labels for writing kernels,
//! * [`Interpreter`] — a functional simulator that executes a [`Program`] and
//!   produces a dynamic [`Trace`] of [`ExecRecord`]s (operand values, memory
//!   addresses, branch outcomes) that drives the significance-compression
//!   activity models and the pipeline timing simulators,
//! * [`tracefile`] — the portable `.sctrace` on-disk trace format
//!   ([`TraceWriter`] / [`TraceReader`]), so captured executions can be
//!   stored, shipped and replayed bit-identically.
//!
//! # Example
//!
//! ```
//! use sigcomp_isa::{ProgramBuilder, Interpreter, reg};
//!
//! # fn main() -> Result<(), sigcomp_isa::IsaError> {
//! let mut b = ProgramBuilder::new();
//! b.li(reg::T0, 0);
//! b.li(reg::T1, 10);
//! b.label("loop");
//! b.addiu(reg::T0, reg::T0, 1);
//! b.bne(reg::T0, reg::T1, "loop");
//! b.halt();
//! let program = b.assemble()?;
//!
//! let mut interp = Interpreter::new(&program);
//! let trace = interp.run(100_000)?;
//! assert_eq!(interp.reg(reg::T0), 10);
//! assert!(trace.len() > 20);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

mod asm;
mod decoded;
mod error;
mod instr;
mod interp;
mod memory;
mod op;
pub mod program;
pub mod reg;
mod trace;
pub mod tracefile;

pub use asm::ProgramBuilder;
pub use decoded::DecodedTrace;
pub use error::{DecodeError, IsaError};
pub use instr::{Format, Instruction};
pub use interp::Interpreter;
pub use memory::SparseMemory;
pub use op::{DestField, Op, OpClass};
pub use program::Program;
pub use reg::Reg;
pub use trace::{BranchOutcome, ExecRecord, MemAccess, Trace};
pub use tracefile::{read_trace, write_trace, TraceFileError, TraceReader, TraceWriter};
