//! A small assembler: build programs with labelled branches and a data
//! segment, then assemble them into a [`Program`].

use crate::error::IsaError;
use crate::instr::Instruction;
use crate::op::Op;
use crate::program::{Program, DEFAULT_DATA_BASE, DEFAULT_STACK_TOP, DEFAULT_TEXT_BASE};
use crate::reg::{self, Reg};
use std::collections::HashMap;

/// One emitted text item; pseudo-instructions are expanded at emit time so
/// every item occupies exactly one instruction word.
#[derive(Debug, Clone)]
enum Item {
    /// A fully resolved instruction.
    Fixed(Instruction),
    /// A conditional branch to a label (PC-relative fixup).
    Branch {
        op: Op,
        rs: Reg,
        rt: Reg,
        label: String,
    },
    /// A jump (J/JAL) to a text label (absolute fixup).
    Jump { op: Op, label: String },
    /// `lui rt, %hi(label)` where the label lives in the data segment.
    LuiData { rt: Reg, label: String },
    /// `ori rt, rt, %lo(label)` where the label lives in the data segment.
    OriData { rt: Reg, label: String },
}

/// Builds a [`Program`] instruction by instruction.
///
/// Branch and jump targets are symbolic labels resolved by
/// [`ProgramBuilder::assemble`]. Data can be placed in the data segment with
/// [`ProgramBuilder::word`] and friends and addressed with
/// [`ProgramBuilder::la`].
///
/// ```
/// use sigcomp_isa::{ProgramBuilder, reg};
/// # fn main() -> Result<(), sigcomp_isa::IsaError> {
/// let mut b = ProgramBuilder::new();
/// b.dlabel("table");
/// b.word(7);
/// b.la(reg::A0, "table");
/// b.lw(reg::T0, reg::A0, 0);
/// b.halt();
/// let p = b.assemble()?;
/// assert!(p.len() >= 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    items: Vec<Item>,
    text_labels: HashMap<String, u32>,
    data: Vec<u8>,
    data_labels: HashMap<String, u32>,
    text_base: u32,
    data_base: u32,
    stack_top: u32,
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramBuilder {
    /// Creates a builder with the default memory map (text at
    /// `0x0040_0000`, data at `0x1000_0000`, stack near the top of memory).
    #[must_use]
    pub fn new() -> Self {
        ProgramBuilder {
            items: Vec::new(),
            text_labels: HashMap::new(),
            data: Vec::new(),
            data_labels: HashMap::new(),
            text_base: DEFAULT_TEXT_BASE,
            data_base: DEFAULT_DATA_BASE,
            stack_top: DEFAULT_STACK_TOP,
        }
    }

    /// Overrides the data segment base address.
    pub fn with_data_base(mut self, base: u32) -> Self {
        self.data_base = base;
        self
    }

    /// Overrides the text segment base address.
    pub fn with_text_base(mut self, base: u32) -> Self {
        self.text_base = base;
        self
    }

    /// Current instruction index (useful for size accounting in tests).
    #[must_use]
    pub fn here(&self) -> u32 {
        self.items.len() as u32
    }

    // ---- labels -----------------------------------------------------------

    /// Defines a text label at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined (this is a programming error
    /// in the kernel being built).
    pub fn label(&mut self, name: &str) {
        let prev = self.text_labels.insert(name.to_owned(), self.here());
        assert!(prev.is_none(), "duplicate text label `{name}`");
    }

    /// Defines a data label at the current end of the data segment.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined.
    pub fn dlabel(&mut self, name: &str) {
        let prev = self
            .data_labels
            .insert(name.to_owned(), self.data.len() as u32);
        assert!(prev.is_none(), "duplicate data label `{name}`");
    }

    // ---- data segment -----------------------------------------------------

    /// Appends a 32-bit word (little-endian) to the data segment.
    pub fn word(&mut self, value: u32) {
        self.data.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends many words to the data segment.
    pub fn words(&mut self, values: &[u32]) {
        for &v in values {
            self.word(v);
        }
    }

    /// Appends a signed 16-bit halfword to the data segment.
    pub fn half(&mut self, value: i16) {
        self.data.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends many halfwords to the data segment.
    pub fn halves(&mut self, values: &[i16]) {
        for &v in values {
            self.half(v);
        }
    }

    /// Appends raw bytes to the data segment.
    pub fn bytes(&mut self, values: &[u8]) {
        self.data.extend_from_slice(values);
    }

    /// Reserves `n` zero bytes in the data segment.
    pub fn space(&mut self, n: usize) {
        self.data.resize(self.data.len() + n, 0);
    }

    /// Pads the data segment to the given power-of-two alignment.
    pub fn align(&mut self, align: usize) {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        while !self.data.len().is_multiple_of(align) {
            self.data.push(0);
        }
    }

    // ---- raw emission -----------------------------------------------------

    /// Emits an already-built instruction.
    pub fn emit(&mut self, i: Instruction) {
        self.items.push(Item::Fixed(i));
    }

    // ---- R-format ---------------------------------------------------------

    /// `addu rd, rs, rt`
    pub fn addu(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instruction::r3(Op::Addu, rd, rs, rt));
    }
    /// `subu rd, rs, rt`
    pub fn subu(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instruction::r3(Op::Subu, rd, rs, rt));
    }
    /// `and rd, rs, rt`
    pub fn and(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instruction::r3(Op::And, rd, rs, rt));
    }
    /// `or rd, rs, rt`
    pub fn or(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instruction::r3(Op::Or, rd, rs, rt));
    }
    /// `xor rd, rs, rt`
    pub fn xor(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instruction::r3(Op::Xor, rd, rs, rt));
    }
    /// `nor rd, rs, rt`
    pub fn nor(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instruction::r3(Op::Nor, rd, rs, rt));
    }
    /// `slt rd, rs, rt`
    pub fn slt(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instruction::r3(Op::Slt, rd, rs, rt));
    }
    /// `sltu rd, rs, rt`
    pub fn sltu(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instruction::r3(Op::Sltu, rd, rs, rt));
    }
    /// `sll rd, rt, shamt`
    pub fn sll(&mut self, rd: Reg, rt: Reg, shamt: u8) {
        self.emit(Instruction::shift_imm(Op::Sll, rd, rt, shamt));
    }
    /// `srl rd, rt, shamt`
    pub fn srl(&mut self, rd: Reg, rt: Reg, shamt: u8) {
        self.emit(Instruction::shift_imm(Op::Srl, rd, rt, shamt));
    }
    /// `sra rd, rt, shamt`
    pub fn sra(&mut self, rd: Reg, rt: Reg, shamt: u8) {
        self.emit(Instruction::shift_imm(Op::Sra, rd, rt, shamt));
    }
    /// `sllv rd, rt, rs`
    pub fn sllv(&mut self, rd: Reg, rt: Reg, rs: Reg) {
        self.emit(Instruction::r3(Op::Sllv, rd, rs, rt));
    }
    /// `srlv rd, rt, rs`
    pub fn srlv(&mut self, rd: Reg, rt: Reg, rs: Reg) {
        self.emit(Instruction::r3(Op::Srlv, rd, rs, rt));
    }
    /// `srav rd, rt, rs`
    pub fn srav(&mut self, rd: Reg, rt: Reg, rs: Reg) {
        self.emit(Instruction::r3(Op::Srav, rd, rs, rt));
    }
    /// `mult rs, rt`
    pub fn mult(&mut self, rs: Reg, rt: Reg) {
        self.emit(Instruction::r3(Op::Mult, reg::ZERO, rs, rt));
    }
    /// `multu rs, rt`
    pub fn multu(&mut self, rs: Reg, rt: Reg) {
        self.emit(Instruction::r3(Op::Multu, reg::ZERO, rs, rt));
    }
    /// `div rs, rt`
    pub fn div(&mut self, rs: Reg, rt: Reg) {
        self.emit(Instruction::r3(Op::Div, reg::ZERO, rs, rt));
    }
    /// `divu rs, rt`
    pub fn divu(&mut self, rs: Reg, rt: Reg) {
        self.emit(Instruction::r3(Op::Divu, reg::ZERO, rs, rt));
    }
    /// `mfhi rd`
    pub fn mfhi(&mut self, rd: Reg) {
        self.emit(Instruction::r3(Op::Mfhi, rd, reg::ZERO, reg::ZERO));
    }
    /// `mflo rd`
    pub fn mflo(&mut self, rd: Reg) {
        self.emit(Instruction::r3(Op::Mflo, rd, reg::ZERO, reg::ZERO));
    }
    /// `mthi rs`
    pub fn mthi(&mut self, rs: Reg) {
        self.emit(Instruction::r3(Op::Mthi, reg::ZERO, rs, reg::ZERO));
    }
    /// `mtlo rs`
    pub fn mtlo(&mut self, rs: Reg) {
        self.emit(Instruction::r3(Op::Mtlo, reg::ZERO, rs, reg::ZERO));
    }
    /// `jr rs`
    pub fn jr(&mut self, rs: Reg) {
        self.emit(Instruction::r3(Op::Jr, reg::ZERO, rs, reg::ZERO));
    }
    /// `jalr rd, rs`
    pub fn jalr(&mut self, rd: Reg, rs: Reg) {
        self.emit(Instruction::r3(Op::Jalr, rd, rs, reg::ZERO));
    }

    // ---- I-format ---------------------------------------------------------

    /// `addiu rt, rs, imm`
    pub fn addiu(&mut self, rt: Reg, rs: Reg, imm: i16) {
        self.emit(Instruction::imm(Op::Addiu, rt, rs, imm as u16));
    }
    /// `slti rt, rs, imm`
    pub fn slti(&mut self, rt: Reg, rs: Reg, imm: i16) {
        self.emit(Instruction::imm(Op::Slti, rt, rs, imm as u16));
    }
    /// `sltiu rt, rs, imm`
    pub fn sltiu(&mut self, rt: Reg, rs: Reg, imm: i16) {
        self.emit(Instruction::imm(Op::Sltiu, rt, rs, imm as u16));
    }
    /// `andi rt, rs, imm`
    pub fn andi(&mut self, rt: Reg, rs: Reg, imm: u16) {
        self.emit(Instruction::imm(Op::Andi, rt, rs, imm));
    }
    /// `ori rt, rs, imm`
    pub fn ori(&mut self, rt: Reg, rs: Reg, imm: u16) {
        self.emit(Instruction::imm(Op::Ori, rt, rs, imm));
    }
    /// `xori rt, rs, imm`
    pub fn xori(&mut self, rt: Reg, rs: Reg, imm: u16) {
        self.emit(Instruction::imm(Op::Xori, rt, rs, imm));
    }
    /// `lui rt, imm`
    pub fn lui(&mut self, rt: Reg, imm: u16) {
        self.emit(Instruction::imm(Op::Lui, rt, reg::ZERO, imm));
    }
    /// `lw rt, offset(base)`
    pub fn lw(&mut self, rt: Reg, base: Reg, offset: i16) {
        self.emit(Instruction::imm(Op::Lw, rt, base, offset as u16));
    }
    /// `lh rt, offset(base)`
    pub fn lh(&mut self, rt: Reg, base: Reg, offset: i16) {
        self.emit(Instruction::imm(Op::Lh, rt, base, offset as u16));
    }
    /// `lhu rt, offset(base)`
    pub fn lhu(&mut self, rt: Reg, base: Reg, offset: i16) {
        self.emit(Instruction::imm(Op::Lhu, rt, base, offset as u16));
    }
    /// `lb rt, offset(base)`
    pub fn lb(&mut self, rt: Reg, base: Reg, offset: i16) {
        self.emit(Instruction::imm(Op::Lb, rt, base, offset as u16));
    }
    /// `lbu rt, offset(base)`
    pub fn lbu(&mut self, rt: Reg, base: Reg, offset: i16) {
        self.emit(Instruction::imm(Op::Lbu, rt, base, offset as u16));
    }
    /// `sw rt, offset(base)`
    pub fn sw(&mut self, rt: Reg, base: Reg, offset: i16) {
        self.emit(Instruction::imm(Op::Sw, rt, base, offset as u16));
    }
    /// `sh rt, offset(base)`
    pub fn sh(&mut self, rt: Reg, base: Reg, offset: i16) {
        self.emit(Instruction::imm(Op::Sh, rt, base, offset as u16));
    }
    /// `sb rt, offset(base)`
    pub fn sb(&mut self, rt: Reg, base: Reg, offset: i16) {
        self.emit(Instruction::imm(Op::Sb, rt, base, offset as u16));
    }

    // ---- control flow -----------------------------------------------------

    /// `beq rs, rt, label`
    pub fn beq(&mut self, rs: Reg, rt: Reg, label: &str) {
        self.items.push(Item::Branch {
            op: Op::Beq,
            rs,
            rt,
            label: label.to_owned(),
        });
    }
    /// `bne rs, rt, label`
    pub fn bne(&mut self, rs: Reg, rt: Reg, label: &str) {
        self.items.push(Item::Branch {
            op: Op::Bne,
            rs,
            rt,
            label: label.to_owned(),
        });
    }
    /// `blez rs, label`
    pub fn blez(&mut self, rs: Reg, label: &str) {
        self.items.push(Item::Branch {
            op: Op::Blez,
            rs,
            rt: reg::ZERO,
            label: label.to_owned(),
        });
    }
    /// `bgtz rs, label`
    pub fn bgtz(&mut self, rs: Reg, label: &str) {
        self.items.push(Item::Branch {
            op: Op::Bgtz,
            rs,
            rt: reg::ZERO,
            label: label.to_owned(),
        });
    }
    /// `bltz rs, label`
    pub fn bltz(&mut self, rs: Reg, label: &str) {
        self.items.push(Item::Branch {
            op: Op::Bltz,
            rs,
            rt: reg::ZERO,
            label: label.to_owned(),
        });
    }
    /// `bgez rs, label`
    pub fn bgez(&mut self, rs: Reg, label: &str) {
        self.items.push(Item::Branch {
            op: Op::Bgez,
            rs,
            rt: reg::ZERO,
            label: label.to_owned(),
        });
    }
    /// Unconditional branch to `label` (assembled as `beq $zero, $zero, label`).
    pub fn b(&mut self, label: &str) {
        self.beq(reg::ZERO, reg::ZERO, label);
    }
    /// `j label`
    pub fn j(&mut self, label: &str) {
        self.items.push(Item::Jump {
            op: Op::J,
            label: label.to_owned(),
        });
    }
    /// `jal label`
    pub fn jal(&mut self, label: &str) {
        self.items.push(Item::Jump {
            op: Op::Jal,
            label: label.to_owned(),
        });
    }

    // ---- pseudo-instructions ----------------------------------------------

    /// `nop`
    pub fn nop(&mut self) {
        self.emit(Instruction::NOP);
    }

    /// Halts the program (emits `break`).
    pub fn halt(&mut self) {
        self.emit(Instruction::r3(Op::Break, reg::ZERO, reg::ZERO, reg::ZERO));
    }

    /// `move rd, rs`
    pub fn mov(&mut self, rd: Reg, rs: Reg) {
        self.addu(rd, rs, reg::ZERO);
    }

    /// Loads a 32-bit constant into `rt` (1–2 instructions, chosen by value).
    pub fn li(&mut self, rt: Reg, value: i32) {
        let v = value as u32;
        if (-32768..=32767).contains(&value) {
            self.addiu(rt, reg::ZERO, value as i16);
        } else if v <= 0xffff {
            self.ori(rt, reg::ZERO, v as u16);
        } else if v & 0xffff == 0 {
            self.lui(rt, (v >> 16) as u16);
        } else {
            self.lui(rt, (v >> 16) as u16);
            self.ori(rt, rt, (v & 0xffff) as u16);
        }
    }

    /// Loads the absolute address of a data label into `rt` (always 2
    /// instructions: `lui` + `ori`).
    pub fn la(&mut self, rt: Reg, data_label: &str) {
        self.items.push(Item::LuiData {
            rt,
            label: data_label.to_owned(),
        });
        self.items.push(Item::OriData {
            rt,
            label: data_label.to_owned(),
        });
    }

    // ---- assembly ---------------------------------------------------------

    /// Resolves all labels and produces the final [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UndefinedLabel`] for a reference to an unknown
    /// label and [`IsaError::BranchOutOfRange`] if a branch displacement does
    /// not fit in 16 bits.
    pub fn assemble(&self) -> Result<Program, IsaError> {
        let mut text = Vec::with_capacity(self.items.len());
        for (idx, item) in self.items.iter().enumerate() {
            let word = match item {
                Item::Fixed(i) => i.encode(),
                Item::Branch { op, rs, rt, label } => {
                    let target = *self
                        .text_labels
                        .get(label)
                        .ok_or_else(|| IsaError::UndefinedLabel(label.clone()))?;
                    // Branch offsets are relative to the instruction after the
                    // branch, in word units.
                    let disp = i64::from(target) - (idx as i64 + 1);
                    if !(-32768..=32767).contains(&disp) {
                        return Err(IsaError::BranchOutOfRange {
                            label: label.clone(),
                            displacement: disp,
                        });
                    }
                    Instruction::imm(*op, *rt, *rs, disp as i16 as u16).encode()
                }
                Item::Jump { op, label } => {
                    let target = *self
                        .text_labels
                        .get(label)
                        .ok_or_else(|| IsaError::UndefinedLabel(label.clone()))?;
                    let addr = self.text_base + target * 4;
                    Instruction::jump(*op, addr >> 2).encode()
                }
                Item::LuiData { rt, label } => {
                    let addr = self.data_addr(label)?;
                    // Use the %hi/%lo convention that pairs with a plain ori.
                    Instruction::imm(Op::Lui, *rt, reg::ZERO, (addr >> 16) as u16).encode()
                }
                Item::OriData { rt, label } => {
                    let addr = self.data_addr(label)?;
                    Instruction::imm(Op::Ori, *rt, *rt, (addr & 0xffff) as u16).encode()
                }
            };
            text.push(word);
        }
        Ok(Program {
            text_base: self.text_base,
            text,
            data_base: self.data_base,
            data: self.data.clone(),
            entry: self.text_base,
            stack_top: self.stack_top,
        })
    }

    fn data_addr(&self, label: &str) -> Result<u32, IsaError> {
        self.data_labels
            .get(label)
            .map(|off| self.data_base + off)
            .ok_or_else(|| IsaError::UndefinedLabel(label.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{A0, T0, T1};

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut b = ProgramBuilder::new();
        b.label("top");
        b.addiu(T0, T0, 1);
        b.bne(T0, T1, "top"); // backward: displacement -2
        b.beq(T0, T1, "end"); // forward: displacement +1
        b.nop();
        b.label("end");
        b.halt();
        let p = b.assemble().unwrap();
        let back = Instruction::decode(p.text[1]).unwrap();
        assert_eq!(back.imm_se(), -2);
        let fwd = Instruction::decode(p.text[2]).unwrap();
        assert_eq!(fwd.imm_se(), 1);
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.b("nowhere");
        assert_eq!(
            b.assemble().unwrap_err(),
            IsaError::UndefinedLabel("nowhere".to_owned())
        );
    }

    #[test]
    #[should_panic(expected = "duplicate text label")]
    fn duplicate_label_panics() {
        let mut b = ProgramBuilder::new();
        b.label("x");
        b.label("x");
    }

    #[test]
    fn li_chooses_minimal_encoding() {
        let mut b = ProgramBuilder::new();
        b.li(T0, 5); // 1 instruction
        b.li(T0, -3); // 1 instruction
        b.li(T0, 0xabcd); // 1 instruction (ori)
        b.li(T0, 0x7fff_0000); // 1 instruction (lui)
        b.li(T0, 0x1234_5678); // 2 instructions
        assert_eq!(b.here(), 6);
    }

    #[test]
    fn la_resolves_to_data_segment_address() {
        let mut b = ProgramBuilder::new();
        b.word(0); // 4 bytes before the label
        b.dlabel("buf");
        b.word(42);
        b.la(A0, "buf");
        b.halt();
        let p = b.assemble().unwrap();
        let lui = Instruction::decode(p.text[0]).unwrap();
        let ori = Instruction::decode(p.text[1]).unwrap();
        let addr = (u32::from(lui.imm) << 16) | u32::from(ori.imm);
        assert_eq!(addr, p.data_base + 4);
    }

    #[test]
    fn jump_targets_are_absolute_word_addresses() {
        let mut b = ProgramBuilder::new();
        b.nop();
        b.label("fn");
        b.halt();
        b.j("fn");
        let p = b.assemble().unwrap();
        let j = Instruction::decode(p.text[2]).unwrap();
        assert_eq!(j.target << 2, p.text_base + 4);
    }

    #[test]
    fn data_section_layout() {
        let mut b = ProgramBuilder::new();
        b.bytes(&[1, 2, 3]);
        b.align(4);
        b.dlabel("w");
        b.word(0xdead_beef);
        b.halves(&[-1, 2]);
        b.space(2);
        let p = {
            b.halt();
            b.assemble().unwrap()
        };
        assert_eq!(p.data.len(), 3 + 1 + 4 + 4 + 2);
        assert_eq!(p.data[4..8], 0xdead_beefu32.to_le_bytes());
    }

    #[test]
    fn branch_out_of_range_detected() {
        let mut b = ProgramBuilder::new();
        b.label("top");
        for _ in 0..40_000 {
            b.nop();
        }
        b.b("top");
        assert!(matches!(
            b.assemble().unwrap_err(),
            IsaError::BranchOutOfRange { .. }
        ));
    }
}
