//! Conformance tests for the `.sctrace` portable trace format: deterministic
//! property-style encode→decode identity over varied real executions, plus
//! adversarial malformed-input cases that must surface named errors — never
//! panics, never silently-wrong traces.

use sigcomp_isa::tracefile::{
    collect_records, payload_digest, write_trace, TraceFileError, TraceReader, TraceWriter,
};
use sigcomp_isa::{
    reg, ExecRecord, Instruction, Interpreter, MemAccess, Op, ProgramBuilder, Trace,
};
use std::io::Cursor;

/// A kernel that exercises every record shape the format can carry:
/// arithmetic, shifts, mult/div + HI/LO, all load/store widths, taken and
/// untaken branches, calls and returns.
fn rich_trace(scale: i32) -> Trace {
    let mut b = ProgramBuilder::new();
    b.dlabel("buf");
    b.words(&[0, 0, 0, 0]);
    b.li(reg::T0, scale);
    b.li(reg::T1, 3);
    b.jal("twiddle");
    b.la(reg::A0, "buf");
    b.sw(reg::V0, reg::A0, 0);
    b.lw(reg::T2, reg::A0, 0);
    b.sh(reg::V0, reg::A0, 4);
    b.lhu(reg::T3, reg::A0, 4);
    b.sb(reg::V0, reg::A0, 8);
    b.lb(reg::T4, reg::A0, 8);
    b.lbu(reg::T5, reg::A0, 8);
    b.mult(reg::T0, reg::T1);
    b.mflo(reg::T6);
    b.mfhi(reg::T7);
    b.li(reg::T8, 0);
    b.label("loop");
    b.addiu(reg::T8, reg::T8, 1);
    b.slt(reg::T9, reg::T8, reg::T1);
    b.bne(reg::T9, reg::ZERO, "loop");
    b.beq(reg::T8, reg::ZERO, "loop"); // never taken
    b.sra(reg::S0, reg::T0, 2);
    b.halt();
    b.label("twiddle");
    b.addu(reg::V0, reg::T0, reg::T1);
    b.sll(reg::V0, reg::V0, 1);
    b.jr(reg::RA);
    let program = b.assemble().expect("assembles");
    Interpreter::new(&program).run(100_000).expect("runs")
}

fn to_bytes(trace: &Trace, meta: &[(&str, &str)]) -> Vec<u8> {
    let mut writer = TraceWriter::new();
    for (key, value) in meta {
        writer.set_meta(key, value);
    }
    for rec in trace {
        writer.push(rec).expect("encodes");
    }
    let mut bytes = Vec::new();
    writer.finish(&mut bytes).expect("writes");
    bytes
}

fn from_bytes(bytes: &[u8]) -> Result<Trace, TraceFileError> {
    collect_records(TraceReader::new(Cursor::new(bytes))?)
}

/// Byte offset of the first record (just past the `%%\n` header terminator).
fn payload_offset(bytes: &[u8]) -> usize {
    bytes
        .windows(3)
        .position(|w| w == b"%%\n")
        .expect("header terminator present")
        + 3
}

#[test]
fn encode_decode_is_the_identity_on_real_executions() {
    // Deterministic property-style sweep: different data scales change the
    // operand values, branch outcomes and significance patterns, but every
    // variant must survive the round trip record-for-record.
    for scale in [0, 1, -1, 127, -128, 1000, -100_000, i32::MAX, i32::MIN] {
        let trace = rich_trace(scale);
        assert!(trace.len() > 20, "scale {scale} produced a trivial trace");
        let restored = from_bytes(&to_bytes(&trace, &[])).expect("round trips");
        assert_eq!(
            restored.records(),
            trace.records(),
            "scale {scale} did not round-trip"
        );
    }
}

#[test]
fn empty_traces_round_trip() {
    let restored = from_bytes(&to_bytes(&Trace::new(), &[])).expect("round trips");
    assert!(restored.is_empty());
}

#[test]
fn metadata_round_trips_and_reserved_keys_are_ignored() {
    let trace = rich_trace(7);
    let bytes = to_bytes(
        &trace,
        &[
            ("source", "unit"),
            ("records", "999"), // reserved: must not override the header
            ("digest", "f00f"), // reserved
            ("BAD KEY", "x"),   // invalid key: dropped
            ("note", "has spaces and = signs"),
        ],
    );
    let reader = TraceReader::new(Cursor::new(&bytes)).expect("opens");
    assert_eq!(reader.records(), trace.len() as u64);
    assert_eq!(reader.meta_value("source"), Some("unit"));
    assert_eq!(reader.meta_value("note"), Some("has spaces and = signs"));
    assert_eq!(reader.meta_value("BAD KEY"), None);
    collect_records(reader).expect("payload intact");
}

#[test]
fn file_round_trip_via_write_trace_and_digest_agree() {
    let trace = rich_trace(42);
    let dir = std::env::temp_dir().join(format!("sctrace-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.sctrace");
    let digest = write_trace(&path, &trace, &[("source", "test")]).expect("writes");
    assert_eq!(digest, payload_digest(&trace).unwrap());
    let restored = sigcomp_isa::read_trace(&path).expect("reads");
    assert_eq!(restored.records(), trace.records());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_records_are_named_not_panics() {
    let trace = rich_trace(9);
    let bytes = to_bytes(&trace, &[]);
    let offset = payload_offset(&bytes);
    // Cut the stream at every prefix length within the first few records:
    // each one must yield TruncatedRecord (or parse cleanly at an exact
    // record boundary — but never beyond record 3's worth of bytes).
    for cut in offset..(offset + 40) {
        match from_bytes(&bytes[..cut]) {
            Err(TraceFileError::TruncatedRecord { index }) => {
                assert!(index <= 3, "cut {cut}: index {index}");
            }
            other => panic!("cut {cut}: expected TruncatedRecord, got {other:?}"),
        }
    }
}

#[test]
fn oversized_record_counts_are_reported_as_truncation() {
    let trace = rich_trace(5);
    let bytes = to_bytes(&trace, &[]);
    let text = String::from_utf8_lossy(&bytes[..payload_offset(&bytes)]).into_owned();
    let inflated = text.replace(
        &format!("records={}", trace.len()),
        &format!("records={}", trace.len() as u64 + 1_000_000),
    );
    assert_ne!(inflated, text, "replacement must hit");
    let mut forged = inflated.into_bytes();
    forged.extend_from_slice(&bytes[payload_offset(&bytes)..]);
    match from_bytes(&forged) {
        Err(TraceFileError::TruncatedRecord { index }) => {
            assert_eq!(index, trace.len() as u64);
        }
        other => panic!("expected TruncatedRecord, got {other:?}"),
    }
}

#[test]
fn trailing_bytes_are_rejected() {
    let trace = rich_trace(5);
    let mut bytes = to_bytes(&trace, &[]);
    bytes.push(0);
    assert!(matches!(
        from_bytes(&bytes),
        Err(TraceFileError::TrailingBytes)
    ));
}

#[test]
fn payload_corruption_is_caught_by_the_digest() {
    let trace = rich_trace(5);
    let mut bytes = to_bytes(&trace, &[]);
    // The last byte of the final record is part of a little-endian value
    // field, so the stream still parses — only the digest can catch it.
    *bytes.last_mut().unwrap() ^= 0x40;
    assert!(matches!(
        from_bytes(&bytes),
        Err(TraceFileError::DigestMismatch { .. })
    ));
}

#[test]
fn reserved_and_orphan_flag_bits_are_rejected() {
    let trace = rich_trace(5);
    let bytes = to_bytes(&trace, &[]);
    let offset = payload_offset(&bytes);
    for bad in [0x80u8, 1 << 5, 1 << 6] {
        // bit 7 reserved; store/taken bits without mem/branch. Record 0 is
        // `li` (no mem, no branch), so OR-ing these in is always invalid.
        let mut forged = bytes.clone();
        forged[offset] |= bad;
        match from_bytes(&forged) {
            Err(TraceFileError::BadFlags { index: 0, .. }) => {}
            other => panic!("flag {bad:#x}: expected BadFlags, got {other:?}"),
        }
    }
}

/// Hand-builds a single-record trace whose payload layout is known exactly,
/// so individual bytes can be attacked: `lui $t0` has no source reads, one
/// writeback, no memory access, no branch.
fn lui_record() -> ExecRecord {
    let instr = Instruction::imm(Op::Lui, reg::T0, reg::ZERO, 5);
    ExecRecord {
        seq: 0,
        pc: 0x0040_0000,
        word: instr.encode(),
        instr,
        rs_value: None,
        rt_value: None,
        writeback: Some((reg::T0, 5 << 16)),
        mem: None,
        branch: None,
    }
}

#[test]
fn out_of_range_writeback_registers_are_rejected() {
    let trace: Trace = [lui_record()].into_iter().collect();
    let bytes = to_bytes(&trace, &[]);
    let offset = payload_offset(&bytes);
    // Layout: flags(1) pc(4) word(4) reg(1) value(4) — reg at offset + 9.
    for bad_reg in [0u8, 32, 255] {
        let mut forged = bytes.clone();
        forged[offset + 9] = bad_reg;
        match from_bytes(&forged) {
            Err(TraceFileError::BadRegister { index: 0, reg }) => assert_eq!(reg, bad_reg),
            Err(TraceFileError::DigestMismatch { .. }) => {
                panic!("register must be validated before the digest")
            }
            other => panic!("reg {bad_reg}: expected BadRegister, got {other:?}"),
        }
    }
}

#[test]
fn invalid_memory_widths_are_rejected() {
    let rec = ExecRecord {
        seq: 0,
        pc: 0x0040_0000,
        word: 0, // NOP decodes
        instr: Instruction::NOP,
        rs_value: None,
        rt_value: None,
        writeback: None,
        mem: Some(MemAccess {
            addr: 0x1000_0000,
            width: 4,
            is_store: true,
            value: 9,
        }),
        branch: None,
    };
    let trace: Trace = [rec].into_iter().collect();
    let bytes = to_bytes(&trace, &[]);
    let offset = payload_offset(&bytes);
    // Layout: flags(1) pc(4) word(4) addr(4) width(1) value(4).
    let mut forged = bytes;
    forged[offset + 13] = 3;
    match from_bytes(&forged) {
        Err(TraceFileError::BadWidth { index: 0, width: 3 }) => {}
        other => panic!("expected BadWidth, got {other:?}"),
    }
}

#[test]
fn undecodable_instruction_words_are_rejected() {
    let trace: Trace = [lui_record()].into_iter().collect();
    let bytes = to_bytes(&trace, &[]);
    let offset = payload_offset(&bytes);
    let mut forged = bytes;
    // Overwrite the instruction word with unused opcode 0x3f.
    forged[offset + 5..offset + 9].copy_from_slice(&0xfc00_0000u32.to_le_bytes());
    match from_bytes(&forged) {
        Err(TraceFileError::UndecodableWord { index: 0, .. }) => {}
        other => panic!("expected UndecodableWord, got {other:?}"),
    }
}

#[test]
fn writer_rejects_unrepresentable_records() {
    // Sequence numbers must be 0..len.
    let mut skewed = lui_record();
    skewed.seq = 3;
    let mut writer = TraceWriter::new();
    assert!(matches!(
        writer.push(&skewed),
        Err(TraceFileError::NonSequentialSeq { index: 0, seq: 3 })
    ));

    // The stored word must re-decode to the stored instruction.
    let mut inconsistent = lui_record();
    inconsistent.word = 0; // NOP word, Lui instr
    assert!(matches!(
        TraceWriter::new().push(&inconsistent),
        Err(TraceFileError::InconsistentInstruction { index: 0 })
    ));

    // Architecturally-invisible $zero writebacks cannot be recorded.
    let mut to_zero = lui_record();
    to_zero.writeback = Some((reg::ZERO, 1));
    assert!(matches!(
        TraceWriter::new().push(&to_zero),
        Err(TraceFileError::BadRegister { index: 0, reg: 0 })
    ));

    // Invalid memory widths are caught on the way out, too.
    let mut bad_width = lui_record();
    bad_width.mem = Some(MemAccess {
        addr: 0,
        width: 3,
        is_store: false,
        value: 0,
    });
    assert!(matches!(
        TraceWriter::new().push(&bad_width),
        Err(TraceFileError::BadWidth { index: 0, width: 3 })
    ));
}

#[test]
fn a_failed_push_leaves_the_writer_usable() {
    // A rejected record must not leave partial bytes behind: skipping it and
    // continuing must still produce a well-formed, readable file.
    let mut writer = TraceWriter::new();
    let mut to_zero = lui_record();
    to_zero.writeback = Some((reg::ZERO, 1));
    assert!(writer.push(&to_zero).is_err());
    writer
        .push(&lui_record())
        .expect("writer still accepts records");
    let mut bytes = Vec::new();
    writer.finish(&mut bytes).expect("writes");
    let restored = from_bytes(&bytes).expect("file is well-formed after a rejected record");
    assert_eq!(restored.records(), &[lui_record()][..]);
}

#[test]
fn oversized_header_lines_are_rejected_without_buffering_the_input() {
    // A large newline-free file (e.g. a binary opened by mistake) must fail
    // with a named error after a bounded read, not be slurped into memory.
    let not_a_trace = vec![b'a'; 1 << 20];
    match TraceReader::new(Cursor::new(not_a_trace)) {
        Err(TraceFileError::OversizedHeaderLine { limit }) => assert!(limit <= 64 * 1024),
        other => panic!("expected OversizedHeaderLine, got {other:?}"),
    }
}

#[test]
fn unbounded_header_metadata_is_rejected() {
    // A crafted file with a valid magic line and endless short key=value
    // lines (no `%%`) must hit the total-header bound, not buffer the whole
    // stream into the metadata table.
    let mut crafted = b"sctrace 1\n".to_vec();
    for i in 0..200_000u32 {
        crafted.extend_from_slice(format!("k{i}=v\n").as_bytes());
    }
    match TraceReader::new(Cursor::new(crafted)) {
        Err(TraceFileError::OversizedHeader { limit }) => assert!(limit <= 1 << 20),
        other => panic!("expected OversizedHeader, got {other:?}"),
    }
}

#[test]
fn header_truncation_is_an_io_error_not_a_panic() {
    for text in ["", "sctrace 1\n", "sctrace 1\nrecords=1\n"] {
        match TraceReader::new(Cursor::new(text.as_bytes())) {
            Err(TraceFileError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof);
            }
            other => panic!("{text:?}: expected EOF error, got {other:?}"),
        }
    }
}

#[test]
fn errors_display_their_specifics() {
    let trace = rich_trace(5);
    let mut bytes = to_bytes(&trace, &[]);
    *bytes.last_mut().unwrap() ^= 0x40;
    let err = from_bytes(&bytes).unwrap_err();
    let text = err.to_string();
    assert!(text.contains("digest"), "{text}");
    assert!(TraceFileError::TruncatedRecord { index: 17 }
        .to_string()
        .contains("17"));
}
