//! Property tests for the ISA layer: instruction encode/decode and the
//! sparse memory image.
//!
//! Originally written against `proptest`; this environment vendors no
//! external crates, so the same properties are exercised with a deterministic
//! splitmix64 case generator.

use sigcomp_isa::{Format, Instruction, Op, Reg, SparseMemory};

struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut z = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        self.0 = z;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn below(&mut self, n: u64) -> u64 {
        ((u128::from(self.next()) * u128::from(n)) >> 64) as u64
    }

    fn reg(&mut self) -> Reg {
        Reg::new(self.below(32) as u8)
    }

    fn instruction(&mut self) -> Instruction {
        let op = Op::ALL[self.below(Op::ALL.len() as u64) as usize];
        let (rd, rs, rt) = (self.reg(), self.reg(), self.reg());
        match op.format() {
            Format::R => match op {
                Op::Sll | Op::Srl | Op::Sra => {
                    Instruction::shift_imm(op, rd, rt, self.below(32) as u8)
                }
                _ => Instruction::r3(op, rd, rs, rt),
            },
            Format::I => Instruction::imm(op, rt, rs, self.next() as u16),
            Format::J => Instruction::jump(op, (self.next() as u32) & ((1 << 26) - 1)),
        }
    }
}

const CASES: usize = 4_000;

#[test]
fn encode_decode_roundtrip() {
    let mut g = Gen::new(11);
    for _ in 0..CASES {
        let instr = g.instruction();
        let decoded = Instruction::decode(instr.encode()).expect("decodes");
        // REGIMM branches re-decode with rt forced to $zero (the field holds
        // the selector), so compare the re-encoded word instead of the struct.
        assert_eq!(decoded.encode(), instr.encode());
        assert_eq!(decoded.op, instr.op);
    }
}

#[test]
fn decode_any_word_is_total() {
    let mut g = Gen::new(12);
    for _ in 0..CASES * 4 {
        let word = g.u32();
        if let Ok(instr) = Instruction::decode(word) {
            let reencoded = instr.encode();
            assert_eq!(
                Instruction::decode(reencoded).expect("round trip").op,
                instr.op
            );
        }
    }
}

#[test]
fn memory_word_roundtrip() {
    let mut g = Gen::new(13);
    for _ in 0..CASES {
        let addr = g.below(0xffff_fff0) as u32;
        let value = g.u32();
        let mut m = SparseMemory::new();
        m.write_word(addr, value);
        assert_eq!(m.read_word(addr), value);
        // Byte composition agrees with little-endian layout.
        let bytes = value.to_le_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            assert_eq!(m.read_byte(addr.wrapping_add(i as u32)), b);
        }
    }
}

#[test]
fn memory_writes_are_isolated() {
    let mut g = Gen::new(14);
    let mut tested = 0;
    while tested < CASES {
        let a = g.below(0x7fff_fff0) as u32;
        let b = g.below(0x7fff_fff0) as u32;
        if a.abs_diff(b) < 4 {
            continue;
        }
        tested += 1;
        let (va, vb) = (g.u32(), g.u32());
        let mut m = SparseMemory::new();
        m.write_word(a, va);
        m.write_word(b, vb);
        assert_eq!(m.read_word(b), vb);
        assert_eq!(m.read_word(a), va);
    }
}

#[test]
fn display_contains_mnemonic() {
    let mut g = Gen::new(15);
    for _ in 0..CASES {
        let instr = g.instruction();
        let text = instr.to_string();
        assert!(
            text.starts_with(instr.op.mnemonic()),
            "{text} vs {}",
            instr.op.mnemonic()
        );
    }
}
