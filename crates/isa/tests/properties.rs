//! Property-based tests for the ISA layer: instruction encode/decode and the
//! sparse memory image.

use proptest::prelude::*;
use sigcomp_isa::{Instruction, Op, Reg, SparseMemory};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    let ops = prop::sample::select(Op::ALL.to_vec());
    (ops, arb_reg(), arb_reg(), arb_reg(), 0u8..32, any::<u16>(), 0u32..(1 << 26)).prop_map(
        |(op, rd, rs, rt, shamt, imm, target)| match op.format() {
            sigcomp_isa::Format::R => match op {
                Op::Sll | Op::Srl | Op::Sra => Instruction::shift_imm(op, rd, rt, shamt),
                _ => Instruction::r3(op, rd, rs, rt),
            },
            sigcomp_isa::Format::I => Instruction::imm(op, rt, rs, imm),
            sigcomp_isa::Format::J => Instruction::jump(op, target),
        },
    )
}

proptest! {
    /// Every constructible instruction survives an encode/decode round trip.
    #[test]
    fn encode_decode_roundtrip(instr in arb_instruction()) {
        let decoded = Instruction::decode(instr.encode()).expect("decodes");
        // REGIMM branches re-decode with rt forced to $zero (the field holds
        // the selector), so compare the re-encoded word instead of the struct.
        prop_assert_eq!(decoded.encode(), instr.encode());
        prop_assert_eq!(decoded.op, instr.op);
    }

    /// Decoding never panics on arbitrary 32-bit words; when it succeeds the
    /// re-encoded word reproduces the meaningful fields.
    #[test]
    fn decode_any_word_is_total(word in any::<u32>()) {
        if let Ok(instr) = Instruction::decode(word) {
            let reencoded = instr.encode();
            prop_assert_eq!(Instruction::decode(reencoded).expect("round trip").op, instr.op);
        }
    }

    /// The sparse memory behaves like a flat array for word reads/writes.
    #[test]
    fn memory_word_roundtrip(addr in 0u32..0xffff_fff0, value in any::<u32>()) {
        let mut m = SparseMemory::new();
        m.write_word(addr, value);
        prop_assert_eq!(m.read_word(addr), value);
        // Byte composition agrees with little-endian layout.
        let bytes = value.to_le_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            prop_assert_eq!(m.read_byte(addr.wrapping_add(i as u32)), b);
        }
    }

    /// Writing one location never disturbs a disjoint location.
    #[test]
    fn memory_writes_are_isolated(a in 0u32..0x7fff_fff0, b in 0u32..0x7fff_fff0,
                                  va in any::<u32>(), vb in any::<u32>()) {
        prop_assume!(a.abs_diff(b) >= 4);
        let mut m = SparseMemory::new();
        m.write_word(a, va);
        m.write_word(b, vb);
        prop_assert_eq!(m.read_word(b), vb);
        if a.abs_diff(b) >= 4 {
            prop_assert_eq!(m.read_word(a), va);
        }
    }

    /// Display output of a decoded instruction always carries its mnemonic.
    #[test]
    fn display_contains_mnemonic(instr in arb_instruction()) {
        let text = instr.to_string();
        prop_assert!(text.starts_with(instr.op.mnemonic()));
    }
}
